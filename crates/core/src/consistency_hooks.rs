//! The mechanism half of consistency-preserving threads (§5.2.1).
//!
//! Clouds separates policy from mechanism: the *mechanism* — tracking
//! read/write sets, buffering cp-thread updates in shadow pages, and
//! invoking lock callbacks on first touch — lives here in the OS core.
//! The *policy* — talking to lock managers, running two-phase commit,
//! deciding LCP vs GCP semantics — lives in `clouds-consistency`, which
//! implements [`LockHooks`] and consumes the [`CpSession`]'s shadow
//! pages at commit time.
//!
//! s-threads have no session and write straight through the DSM;
//! cp-threads route every persistent-memory access through a session:
//!
//! * first read of a segment ⇒ [`LockHooks::lock_read`]
//! * first write of a segment ⇒ [`LockHooks::lock_write`]
//! * writes land in private **shadow pages**, invisible to every other
//!   thread until commit ("the updated segments are written using a
//!   2-phase commit mechanism when the cp-thread completes")
//! * reads see the thread's own shadows first (read-your-writes)

use crate::error::CloudsError;
use clouds_ra::SysName;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Lock acquisition callbacks invoked on a cp-thread's first touch of a
/// segment. Implemented by `clouds-consistency` against the data-server
/// lock managers.
pub trait LockHooks: Send + Sync {
    /// Acquire a read (shared) lock on `seg` for lock-owner `owner`.
    ///
    /// # Errors
    ///
    /// [`CloudsError::ConsistencyAbort`] when the lock cannot be
    /// granted (deadlock timeout): the cp-thread must abort.
    fn lock_read(&self, owner: u64, seg: SysName) -> Result<(), CloudsError>;

    /// Acquire a write (exclusive) lock on `seg` for lock-owner `owner`.
    ///
    /// # Errors
    ///
    /// As for [`LockHooks::lock_read`].
    fn lock_write(&self, owner: u64, seg: SysName) -> Result<(), CloudsError>;
}

/// A shadow page: a private copy-on-write image of one canonical page.
pub type ShadowPage = Vec<u8>;

/// Consistency session attached to a cp-thread for the duration of one
/// consistency-preserving computation.
pub struct CpSession {
    owner: u64,
    hooks: Arc<dyn LockHooks>,
    shadows: Mutex<BTreeMap<(SysName, u32), ShadowPage>>,
    read_locked: Mutex<BTreeSet<SysName>>,
    write_locked: Mutex<BTreeSet<SysName>>,
}

impl fmt::Debug for CpSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpSession")
            .field("owner", &self.owner)
            .field("shadow_pages", &self.shadows.lock().len())
            .finish()
    }
}

impl CpSession {
    /// Open a session for lock-owner `owner` (the Clouds thread id).
    pub fn new(owner: u64, hooks: Arc<dyn LockHooks>) -> Arc<CpSession> {
        Arc::new(CpSession {
            owner,
            hooks,
            shadows: Mutex::new(BTreeMap::new()),
            read_locked: Mutex::new(BTreeSet::new()),
            write_locked: Mutex::new(BTreeSet::new()),
        })
    }

    /// The lock owner id.
    pub fn owner(&self) -> u64 {
        self.owner
    }

    /// Ensure a read lock on `seg` (idempotent).
    ///
    /// # Errors
    ///
    /// Propagates [`LockHooks::lock_read`] failures.
    pub fn ensure_read(&self, seg: SysName) -> Result<(), CloudsError> {
        if self.read_locked.lock().contains(&seg) || self.write_locked.lock().contains(&seg) {
            return Ok(());
        }
        self.hooks.lock_read(self.owner, seg)?;
        self.read_locked.lock().insert(seg);
        Ok(())
    }

    /// Ensure a write lock on `seg` (idempotent; upgrades reads).
    ///
    /// # Errors
    ///
    /// Propagates [`LockHooks::lock_write`] failures.
    pub fn ensure_write(&self, seg: SysName) -> Result<(), CloudsError> {
        if self.write_locked.lock().contains(&seg) {
            return Ok(());
        }
        self.hooks.lock_write(self.owner, seg)?;
        self.write_locked.lock().insert(seg);
        Ok(())
    }

    /// The thread's private image of `page`, if it has written it.
    pub fn shadow(&self, seg: SysName, page: u32) -> Option<ShadowPage> {
        self.shadows.lock().get(&(seg, page)).cloned()
    }

    /// Run `f` on the (possibly created) shadow of `page`; `init`
    /// supplies the canonical image on first touch.
    ///
    /// # Errors
    ///
    /// Propagates `init` failures.
    pub fn with_shadow<R>(
        &self,
        seg: SysName,
        page: u32,
        init: impl FnOnce() -> Result<ShadowPage, CloudsError>,
        f: impl FnOnce(&mut ShadowPage) -> R,
    ) -> Result<R, CloudsError> {
        let mut shadows = self.shadows.lock();
        if let std::collections::btree_map::Entry::Vacant(e) = shadows.entry((seg, page)) {
            let page_image = init()?;
            e.insert(page_image);
        }
        Ok(f(shadows.get_mut(&(seg, page)).expect("just inserted")))
    }

    /// Segments read-locked so far.
    pub fn read_set(&self) -> Vec<SysName> {
        self.read_locked.lock().iter().copied().collect()
    }

    /// Segments write-locked so far.
    pub fn write_set(&self) -> Vec<SysName> {
        self.write_locked.lock().iter().copied().collect()
    }

    /// Drain all shadow pages for commit processing.
    pub fn take_shadows(&self) -> Vec<((SysName, u32), ShadowPage)> {
        std::mem::take(&mut *self.shadows.lock()).into_iter().collect()
    }

    /// Discard all shadow pages (abort).
    pub fn discard_shadows(&self) {
        self.shadows.lock().clear();
    }

    /// Number of dirty shadow pages.
    pub fn shadow_count(&self) -> usize {
        self.shadows.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[derive(Default)]
    struct CountingHooks {
        reads: AtomicU32,
        writes: AtomicU32,
        fail_writes: bool,
    }

    impl LockHooks for CountingHooks {
        fn lock_read(&self, _owner: u64, _seg: SysName) -> Result<(), CloudsError> {
            self.reads.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }

        fn lock_write(&self, _owner: u64, _seg: SysName) -> Result<(), CloudsError> {
            if self.fail_writes {
                return Err(CloudsError::ConsistencyAbort("write lock denied".into()));
            }
            self.writes.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    fn seg(n: u64) -> SysName {
        SysName::from_parts(1, n)
    }

    #[test]
    fn locks_acquired_once_per_segment() {
        let hooks = Arc::new(CountingHooks::default());
        let s = CpSession::new(7, Arc::clone(&hooks) as Arc<dyn LockHooks>);
        s.ensure_read(seg(1)).unwrap();
        s.ensure_read(seg(1)).unwrap();
        s.ensure_read(seg(2)).unwrap();
        assert_eq!(hooks.reads.load(Ordering::SeqCst), 2);
        s.ensure_write(seg(1)).unwrap();
        s.ensure_write(seg(1)).unwrap();
        assert_eq!(hooks.writes.load(Ordering::SeqCst), 1);
        // A write-locked segment needs no separate read lock.
        let s2 = CpSession::new(8, Arc::clone(&hooks) as Arc<dyn LockHooks>);
        s2.ensure_write(seg(5)).unwrap();
        let reads_before = hooks.reads.load(Ordering::SeqCst);
        s2.ensure_read(seg(5)).unwrap();
        assert_eq!(hooks.reads.load(Ordering::SeqCst), reads_before);
    }

    #[test]
    fn failed_lock_propagates() {
        let hooks = Arc::new(CountingHooks {
            fail_writes: true,
            ..CountingHooks::default()
        });
        let s = CpSession::new(7, hooks as Arc<dyn LockHooks>);
        assert!(matches!(
            s.ensure_write(seg(1)),
            Err(CloudsError::ConsistencyAbort(_))
        ));
        assert!(s.write_set().is_empty());
    }

    #[test]
    fn shadow_pages_are_private_and_drainable() {
        let hooks = Arc::new(CountingHooks::default());
        let s = CpSession::new(7, hooks as Arc<dyn LockHooks>);
        assert!(s.shadow(seg(1), 0).is_none());
        s.with_shadow(seg(1), 0, || Ok(vec![0u8; 8]), |p| p[0] = 42)
            .unwrap();
        assert_eq!(s.shadow(seg(1), 0).unwrap()[0], 42);
        // Init only runs on first touch.
        s.with_shadow(
            seg(1),
            0,
            || panic!("must not reinitialize"),
            |p| assert_eq!(p[0], 42),
        )
        .unwrap();
        assert_eq!(s.shadow_count(), 1);
        let drained = s.take_shadows();
        assert_eq!(drained.len(), 1);
        assert_eq!(s.shadow_count(), 0);
    }

    #[test]
    fn discard_clears_shadows() {
        let hooks = Arc::new(CountingHooks::default());
        let s = CpSession::new(7, hooks as Arc<dyn LockHooks>);
        s.with_shadow(seg(1), 0, || Ok(vec![1]), |_| ()).unwrap();
        s.discard_shadows();
        assert_eq!(s.shadow_count(), 0);
        assert!(s.shadow(seg(1), 0).is_none());
    }
}
