//! `clouds` — the Clouds distributed operating system.
//!
//! This crate assembles the substrates (`clouds-ra`, `clouds-dsm`,
//! `clouds-ratp`, `clouds-naming`) into the system the paper describes:
//! an **object–thread** operating system over a set of compute servers,
//! data servers and user workstations (§1.2, §3, Figure 3).
//!
//! * **Objects** ([`object`], [`class`]) — "a Clouds object is a
//!   persistent virtual address space": a header (meta) segment, a
//!   persistent data segment, and a persistent heap segment, all stored
//!   on data servers and demand-paged everywhere. Objects are *passive*;
//!   their code is a [`class::ObjectCode`] registered in the node's
//!   [`class::ClassRegistry`] (standing in for the CC++ / Distributed
//!   Eiffel compiler output).
//! * **Threads** ([`thread`]) — "the only form of user activity": a
//!   thread is created at a workstation, executes entry points in
//!   objects, and traverses objects (and machines) through nested
//!   invocations. Arguments and results are *values* carried by
//!   `clouds-codec`; addresses never cross an object boundary.
//! * **System objects** (§4.2) — the object manager
//!   ([`object_manager`]), thread manager (inside [`node`]), user I/O
//!   manager ([`io`]), DSM client/server and naming, each installed as a
//!   RaTP service on the appropriate machines.
//! * **The cluster** ([`cluster`]) — a builder wiring any number of
//!   compute servers, data servers and workstations onto one simulated
//!   Ethernet.
//!
//! # Quick start
//!
//! The paper's rectangle example (§2.4), end to end:
//!
//! ```
//! use clouds::prelude::*;
//! use serde::{Serialize, Deserialize};
//!
//! struct Rectangle;
//!
//! impl ObjectCode for Rectangle {
//!     fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
//!         match entry {
//!             "size" => {
//!                 let (x, y): (i32, i32) = decode_args(args)?;
//!                 ctx.persistent().write_i32(0, x)?;
//!                 ctx.persistent().write_i32(4, y)?;
//!                 encode_result(&())
//!             }
//!             "area" => {
//!                 let x = ctx.persistent().read_i32(0)?;
//!                 let y = ctx.persistent().read_i32(4)?;
//!                 encode_result(&(x * y))
//!             }
//!             other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), CloudsError> {
//! let cluster = Cluster::builder()
//!     .compute_servers(1)
//!     .data_servers(1)
//!     .workstations(1)
//!     .build()?;
//! cluster.register_class("rectangle", Rectangle)?;
//!
//! let ws = cluster.workstation(0);
//! ws.create_object("rectangle", "Rect01")?;
//! ws.run_wait("Rect01", "size", &(5i32, 10i32))?;
//! let area: i32 = ws.run_wait_decode("Rect01", "area", &())?;
//! assert_eq!(area, 50);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod active;
pub mod class;
pub mod cluster;
pub mod consistency_hooks;
mod error;
pub mod failover;
pub mod invocation;
pub mod io;
pub mod memory;
pub mod node;
pub mod object;
pub mod object_manager;
pub mod shell;
pub mod thread;

pub use class::{ClassRegistry, EntryResult, ObjectCode, OperationLabel};
pub use cluster::{Cluster, ClusterBuilder};
pub use error::CloudsError;
pub use failover::FailoverConfig;
pub use invocation::Invocation;
pub use node::{ComputeServer, DataServer, Workstation};
pub use shell::Shell;
pub use active::ActiveHandle;
pub use thread::{ThreadHandle, ThreadId};

/// Decode entry-point arguments from their wire form.
///
/// # Errors
///
/// [`CloudsError::BadArguments`] when the bytes do not decode as `T`.
pub fn decode_args<T: serde::de::DeserializeOwned>(args: &[u8]) -> Result<T, CloudsError> {
    clouds_codec::from_bytes(args).map_err(|e| CloudsError::BadArguments(e.to_string()))
}

/// Encode a value as entry-point arguments.
///
/// # Errors
///
/// [`CloudsError::BadArguments`] when the value cannot be encoded.
pub fn encode_args<T: serde::Serialize>(value: &T) -> Result<Vec<u8>, CloudsError> {
    clouds_codec::to_bytes(value).map_err(|e| CloudsError::BadArguments(e.to_string()))
}

/// Encode an entry point's result value.
///
/// # Errors
///
/// [`CloudsError::BadArguments`] when the value cannot be encoded.
pub fn encode_result<T: serde::Serialize>(value: &T) -> EntryResult {
    clouds_codec::to_bytes(value).map_err(|e| CloudsError::BadArguments(e.to_string()))
}

/// Everything an application needs to write and run Clouds objects.
pub mod prelude {
    pub use crate::class::{EntryResult, ObjectCode, OperationLabel};
    pub use crate::cluster::Cluster;
    pub use crate::error::CloudsError;
    pub use crate::invocation::Invocation;
    pub use crate::{decode_args, encode_args, encode_result};
    pub use clouds_ra::SysName;
}
