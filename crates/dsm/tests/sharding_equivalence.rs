//! Directory sharding must be protocol-invisible: a server whose
//! coherence directory is striped across eight shards and a server with
//! a single (coarse, pre-sharding) stripe must produce byte-identical
//! reply streams for any interleaved sequence of fetches, write-backs,
//! releases and acks — and leave identical canonical page bytes behind.
//!
//! The two servers live on separate simulated networks and are driven
//! with the same operation list from the same client node ids, so any
//! divergence is attributable to the stripe count alone.

use clouds_codec::PageBytes;
use clouds_dsm::proto::{self, ports, DsmReply, DsmRequest, WireInstallAck, WireMode};
use clouds_dsm::DsmServer;
use clouds_ra::{SegmentStore, SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

const SERVER: NodeId = NodeId(100);
const SEGS: u64 = 2;
const PAGES: u32 = 8;

/// One isolated world: a server with `shard_count` directory stripes
/// and two raw client transports (no recall service registered, so the
/// server's recalls resolve to `NotPresent` — deterministically, on
/// both worlds alike).
struct World {
    _net: Network,
    server: Arc<DsmServer>,
    clients: Vec<Arc<RatpNode>>,
}

impl World {
    fn new(shard_count: usize) -> World {
        let net = Network::new(CostModel::zero());
        let ds = RatpNode::spawn(net.register(SERVER).unwrap(), RatpConfig::default());
        let server = DsmServer::install_sharded(&ds, SegmentStore::new(), shard_count);
        let clients = (1..=2)
            .map(|i| RatpNode::spawn(net.register(NodeId(i)).unwrap(), RatpConfig::default()))
            .collect();
        let world = World {
            _net: net,
            server,
            clients,
        };
        for s in 0..SEGS {
            let reply = world.call(
                0,
                &DsmRequest::CreateSegment {
                    seg: seg(s),
                    len: u64::from(PAGES) * PAGE_SIZE as u64,
                },
            );
            assert!(matches!(reply, DsmReply::Ok));
        }
        world
    }
}

fn seg(n: u64) -> SysName {
    SysName::from_parts(21, n)
}

impl World {
    fn call(&self, client: usize, req: &DsmRequest) -> DsmReply {
        let bytes = self.clients[client]
            .call(SERVER, ports::DSM_SERVER, proto::encode(req))
            .unwrap();
        proto::decode(&bytes).unwrap()
    }
}

/// One step of the driven interleaving.
#[derive(Debug, Clone)]
enum Op {
    Fetch {
        client: usize,
        seg: u64,
        page: u32,
        write: bool,
    },
    WriteBack {
        client: usize,
        seg: u64,
        page: u32,
        fill: u8,
        release: bool,
    },
    Release {
        client: usize,
        seg: u64,
        page: u32,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..2, 0u64..SEGS, 0u32..PAGES, any::<bool>()).prop_map(
            |(client, seg, page, write)| Op::Fetch {
                client,
                seg,
                page,
                write,
            }
        ),
        (0usize..2, 0u64..SEGS, 0u32..PAGES, any::<u8>(), any::<bool>()).prop_map(
            |(client, seg, page, fill, release)| Op::WriteBack {
                client,
                seg,
                page,
                fill,
                release,
            }
        ),
        (0usize..2, 0u64..SEGS, 0u32..PAGES).prop_map(|(client, seg, page)| Op::Release {
            client,
            seg,
            page,
        }),
    ]
}

/// A reply, projected onto what the protocol promises (page image,
/// version, zero-fill flag, error identity) — grant sequence numbers are
/// a server-local implementation detail and excluded on purpose: both
/// worlds allocate from one global counter, but recalls the coarse
/// server serializes differently could legally renumber grants.
#[derive(Debug, PartialEq)]
enum Projected {
    Ok,
    Page {
        data: Vec<u8>,
        version: u64,
        zero_filled: bool,
    },
    Len(u64),
    Err(String),
    Other(String),
}

fn project(reply: &DsmReply) -> Projected {
    match reply {
        DsmReply::Ok => Projected::Ok,
        DsmReply::Page {
            data,
            version,
            zero_filled,
            ..
        } => Projected::Page {
            data: data.to_vec(),
            version: *version,
            zero_filled: *zero_filled,
        },
        DsmReply::Len(v) => Projected::Len(*v),
        DsmReply::Err(e) => Projected::Err(format!("{e:?}")),
        other => Projected::Other(format!("{other:?}")),
    }
}

/// Drive one op against a world; fetches are acked immediately so later
/// transitions never stall on the install-ack deadline.
fn drive(world: &World, op: &Op) -> Projected {
    match *op {
        Op::Fetch {
            client,
            seg: s,
            page,
            write,
        } => {
            let reply = world.call(
                client,
                &DsmRequest::FetchPage {
                    seg: seg(s),
                    page,
                    mode: if write {
                        WireMode::Write
                    } else {
                        WireMode::Read
                    },
                },
            );
            if let DsmReply::Page { grant_seq, .. } = &reply {
                let ack = world.call(
                    client,
                    &DsmRequest::InstallAckBatch {
                        seg: seg(s),
                        acks: vec![WireInstallAck {
                            page,
                            grant_seq: *grant_seq,
                            installed: true,
                        }],
                    },
                );
                assert!(matches!(ack, DsmReply::Ok));
            }
            project(&reply)
        }
        Op::WriteBack {
            client,
            seg: s,
            page,
            fill,
            release,
        } => {
            let reply = world.call(
                client,
                &DsmRequest::WriteBack {
                    seg: seg(s),
                    page,
                    data: PageBytes::from(vec![fill; PAGE_SIZE]),
                    release,
                },
            );
            project(&reply)
        }
        Op::Release {
            client,
            seg: s,
            page,
        } => {
            let reply = world.call(client, &DsmRequest::ReleasePage { seg: seg(s), page });
            project(&reply)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The striped directory is observationally equivalent to the
    /// coarse one under arbitrary interleaved fetch / write-back /
    /// release sequences: identical grants and identical final page
    /// bytes.
    #[test]
    fn sharded_directory_is_equivalent_to_coarse(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let coarse = World::new(1);
        let sharded = World::new(8);
        for (step, op) in ops.iter().enumerate() {
            let a = drive(&coarse, op);
            let b = drive(&sharded, op);
            prop_assert_eq!(
                &a, &b,
                "step {} diverged under {:?}", step, op
            );
        }
        // The canonical stores agree byte for byte (and version for
        // version) after the dust settles.
        for s in 0..SEGS {
            for page in 0..PAGES {
                let a = coarse.call(0, &DsmRequest::FetchPage {
                    seg: seg(s), page, mode: WireMode::Read,
                });
                let b = sharded.call(0, &DsmRequest::FetchPage {
                    seg: seg(s), page, mode: WireMode::Read,
                });
                prop_assert_eq!(
                    project(&a), project(&b),
                    "final state of seg {} page {} diverged", s, page
                );
            }
        }
        // Both worlds served every grant from some stripe; the sharded
        // world's stripe counters must account for exactly the same
        // total as the coarse world's single stripe.
        prop_assert_eq!(
            coarse.server.shard_grant_counts().iter().sum::<u64>(),
            sharded.server.shard_grant_counts().iter().sum::<u64>(),
        );
    }
}
