//! Property test pinning the tentpole equivalence: a replicated segment
//! that loses its primary mid-sequence and fails over to a backup
//! serves **byte-identical** pages to a plain single-home segment that
//! saw the same writes with no crash at all. Mirrored write-back plus
//! promotion must be invisible to the paging client.

use clouds_dsm::{DsmClientPartition, DsmServer};
use clouds_ra::{AddressSpace, PageCache, Partition, SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const PAGES: u64 = 4;
const SLOTS: u64 = 8;

fn seg() -> SysName {
    SysName::from_parts(88, 1)
}

fn cfg() -> RatpConfig {
    RatpConfig {
        retry_interval: Duration::from_millis(5),
        max_retries: 120,
        ..RatpConfig::default()
    }
}

fn spawn_server(net: &Network, id: u32) -> Arc<DsmServer> {
    let ratp = RatpNode::spawn(net.register(NodeId(id)).unwrap(), cfg());
    DsmServer::install(&ratp)
}

fn client(net: &Network, id: u32, servers: &[u32]) -> Arc<DsmClientPartition> {
    let ratp = RatpNode::spawn(net.register(NodeId(id)).unwrap(), cfg());
    DsmClientPartition::install(
        &ratp,
        Arc::new(PageCache::new(16)),
        servers.iter().map(|&n| NodeId(n)).collect(),
    )
}

fn space(part: &Arc<DsmClientPartition>) -> AddressSpace {
    let mut s = AddressSpace::new(
        Arc::clone(part.cache()),
        Arc::clone(part) as Arc<dyn Partition>,
    );
    s.map(0, seg(), 0, PAGES * PAGE_SIZE as u64, true).unwrap();
    s
}

/// Apply `(page, slot, value)` writes through a space, flushing each so
/// every write is a *confirmed* (and, when replicated, mirrored)
/// write-back before the next step.
fn apply(sp: &AddressSpace, writes: &[(u64, u64, u64)]) {
    for &(page, slot, value) in writes {
        sp.write_u64(page * PAGE_SIZE as u64 + slot * 8, value).unwrap();
        sp.flush().unwrap();
    }
}

/// Every slot of every page, as served to a client with no cached state.
fn dump(part: &Arc<DsmClientPartition>) -> Vec<u64> {
    let sp = space(part);
    let mut out = Vec::new();
    for page in 0..PAGES {
        for slot in 0..SLOTS {
            out.push(sp.read_u64(page * PAGE_SIZE as u64 + slot * 8).unwrap());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn failover_is_invisible_to_the_paging_client(
        writes in prop::collection::vec((0u64..PAGES, 0u64..SLOTS, any::<u64>()), 1..20),
        crash_at in 0usize..20,
    ) {
        let k = crash_at.min(writes.len());

        // Reference: the same writes against a plain single-home
        // segment, no faults.
        let reference = {
            let net = Network::new(CostModel::zero());
            let _server = spawn_server(&net, 100);
            let writer = client(&net, 1, &[100]);
            writer
                .create_segment_at(seg(), PAGES * PAGE_SIZE as u64, NodeId(100))
                .unwrap();
            apply(&space(&writer), &writes);
            dump(&client(&net, 2, &[100]))
        };

        // Replicated: primary 100 crashes after `k` confirmed writes,
        // the first backup (101) is promoted — duplicate promotion
        // included, it must be a no-op — and the remaining writes land
        // on the new primary.
        let net = Network::new(CostModel::zero());
        let servers: Vec<Arc<DsmServer>> =
            [100, 101, 102].map(|id| spawn_server(&net, id)).into();
        let writer = client(&net, 1, &[100, 101, 102]);
        let members = [NodeId(100), NodeId(101), NodeId(102)];
        writer
            .create_replicated_segment(seg(), PAGES * PAGE_SIZE as u64, &members)
            .unwrap();
        let sp = space(&writer);
        apply(&sp, &writes[..k]);

        // Crash the primary exactly as `DataServer::crash` does.
        net.crash(NodeId(100));
        servers[0].begin_recovery();
        servers[0].clear_directory();

        servers[1].promote_segment(seg(), 2).unwrap();
        servers[1].promote_segment(seg(), 2).unwrap(); // duplicate: no-op
        let rehomed = (vec![NodeId(101), NodeId(102), NodeId(100)], 2);
        prop_assert_eq!(servers[1].replica_view(seg()), Some(rehomed.clone()));

        // Restart + resync the ex-primary (as `DataServer::restart`
        // would from the naming directory) so mirrors reach it again.
        net.restart(NodeId(100));
        servers[0].adopt_replica_config(seg(), rehomed.0.clone(), rehomed.1);
        servers[0].finish_recovery();

        apply(&sp, &writes[k..]);

        // The promoted backup now homes the segment and serves pages
        // byte-identical to the crash-free single-home run.
        let reader = client(&net, 2, &[100, 101, 102]);
        prop_assert_eq!(reader.home_of(seg()).unwrap(), NodeId(101));
        prop_assert_eq!(dump(&reader), reference);
    }
}
