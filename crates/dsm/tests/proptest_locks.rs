//! Property-based tests on the lock manager's compatibility invariants
//! and on DSM one-copy semantics against a sequential model.

use clouds_dsm::{LockMode, LockOutcome, LockService};
use clouds_ra::SysName;
use proptest::prelude::*;
use std::time::Duration;

fn seg(n: u64) -> SysName {
    SysName::from_parts(77, n)
}

#[derive(Debug, Clone, Default)]
struct ModelLock {
    readers: Vec<u64>,
    /// Writer and its re-entrancy count.
    writer: Option<(u64, u32)>,
}

proptest! {
    /// Random non-blocking acquire/release sequences: the service grants
    /// exactly when a standard readers-writer model (with re-entrancy
    /// and sole-reader upgrade) would.
    #[test]
    fn lock_service_matches_rw_model(
        ops in prop::collection::vec(
            (0u64..3, 0u64..4, any::<bool>(), any::<bool>()),
            1..60,
        )
    ) {
        let service = LockService::default();
        // Per-(seg, owner) hold counts to mirror re-entrancy precisely.
        let mut model: std::collections::HashMap<u64, ModelLock> = Default::default();
        for (s, owner, exclusive, release) in ops {
            let entry = model.entry(s).or_default();
            if release {
                // Release one hold (writer first), as the service does.
                let had = matches!(entry.writer, Some((w, _)) if w == owner)
                    || entry.readers.contains(&owner);
                let got = service.release(seg(s), owner);
                prop_assert_eq!(got.is_some(), had, "release mismatch at seg {}", s);
                if had {
                    match &mut entry.writer {
                        Some((w, n)) if *w == owner => {
                            *n -= 1;
                            if *n == 0 {
                                entry.writer = None;
                            }
                        }
                        _ => {
                            if let Some(pos) =
                                entry.readers.iter().position(|&r| r == owner)
                            {
                                entry.readers.remove(pos);
                            }
                        }
                    }
                }
                continue;
            }
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            let writer_ok =
                entry.writer.is_none() || matches!(entry.writer, Some((w, _)) if w == owner);
            let can = match mode {
                LockMode::Shared => writer_ok,
                LockMode::Exclusive => {
                    writer_ok && entry.readers.iter().all(|&r| r == owner)
                }
            };
            let got = service.acquire(seg(s), mode, owner, Duration::ZERO);
            prop_assert_eq!(
                got == LockOutcome::Granted,
                can,
                "acquire mismatch: seg {} owner {} mode {:?} model {:?}",
                s, owner, mode, entry
            );
            if can {
                match mode {
                    LockMode::Shared => entry.readers.push(owner),
                    LockMode::Exclusive => match &mut entry.writer {
                        Some((_, n)) => *n += 1,
                        None => entry.writer = Some((owner, 1)),
                    },
                }
            }
        }
    }

    /// release_all always leaves every touched segment acquirable.
    #[test]
    fn release_all_frees_for_everyone(
        grabs in prop::collection::vec((0u64..4, 0u64..3, any::<bool>()), 1..30)
    ) {
        let service = LockService::default();
        for &(s, owner, exclusive) in &grabs {
            let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
            let _ = service.acquire(seg(s), mode, owner, Duration::ZERO);
        }
        for owner in 0..3u64 {
            service.release_all(owner);
        }
        for s in 0..4u64 {
            prop_assert_eq!(
                service.acquire(seg(s), LockMode::Exclusive, 99, Duration::ZERO),
                LockOutcome::Granted
            );
        }
    }
}

mod one_copy {
    use clouds_dsm::{DsmClientPartition, DsmServer};
    use clouds_ra::{AddressSpace, PageCache, Partition, SysName, PAGE_SIZE};
    use clouds_ratp::{RatpConfig, RatpNode};
    use clouds_simnet::{CostModel, Network, NodeId};
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// One-copy semantics against a sequential model: any sequence
        /// of single-threaded reads/writes from randomly chosen nodes
        /// behaves exactly like one flat byte array.
        #[test]
        fn dsm_equals_sequential_model(
            ops in prop::collection::vec(
                (0u8..3, 0u64..(2 * PAGE_SIZE as u64 - 8), any::<u64>(), any::<bool>()),
                1..30,
            )
        ) {
            let net = Network::new(CostModel::zero());
            let ds = RatpNode::spawn(net.register(NodeId(100)).unwrap(), RatpConfig::default());
            let _server = DsmServer::install(&ds);
            let seg = SysName::from_parts(5, 5);
            let spaces: Vec<AddressSpace> = (0..3)
                .map(|i| {
                    let ratp = RatpNode::spawn(
                        net.register(NodeId(1 + i)).unwrap(),
                        RatpConfig::default(),
                    );
                    let cache = Arc::new(PageCache::new(8));
                    let part =
                        DsmClientPartition::install(&ratp, Arc::clone(&cache), vec![NodeId(100)]);
                    if i == 0 {
                        part.create_segment(seg, 2 * PAGE_SIZE as u64).unwrap();
                    }
                    let mut s = AddressSpace::new(cache, part as Arc<dyn Partition>);
                    s.map(0, seg, 0, 2 * PAGE_SIZE as u64, true).unwrap();
                    s
                })
                .collect();

            let mut model = vec![0u8; 2 * PAGE_SIZE];
            for (node, offset, value, is_write) in ops {
                let space = &spaces[node as usize];
                if is_write {
                    space.write_u64(offset, value).unwrap();
                    model[offset as usize..offset as usize + 8]
                        .copy_from_slice(&value.to_le_bytes());
                } else {
                    let got = space.read_u64(offset).unwrap();
                    let want = u64::from_le_bytes(
                        model[offset as usize..offset as usize + 8].try_into().unwrap(),
                    );
                    prop_assert_eq!(got, want, "node {} offset {}", node, offset);
                }
            }
        }
    }
}
