//! DSM coherence under an unreliable network: RaTP's retransmission
//! must make the coherence protocol loss-transparent — one-copy
//! semantics may never depend on a lucky wire.

use clouds_dsm::{DsmClientPartition, DsmServer};
use clouds_ra::{AddressSpace, PageCache, Partition, SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId};
use std::sync::Arc;
use std::time::Duration;

fn bed(seed: u64, loss: f64, dup: f64) -> (Network, Vec<AddressSpace>) {
    let net = Network::with_seed(CostModel::zero(), seed);
    let ds = RatpNode::spawn(
        net.register(NodeId(100)).unwrap(),
        RatpConfig {
            retry_interval: Duration::from_millis(8),
            max_retries: 500,
            ..RatpConfig::default()
        },
    );
    let _server = Box::leak(Box::new(DsmServer::install(&ds)));
    let seg = SysName::from_parts(3, 3);
    let spaces = (0..2)
        .map(|i| {
            let ratp = RatpNode::spawn(
                net.register(NodeId(1 + i)).unwrap(),
                RatpConfig {
                    retry_interval: Duration::from_millis(8),
                    max_retries: 500,
                    ..RatpConfig::default()
                },
            );
            let cache = Arc::new(PageCache::new(8));
            let part = DsmClientPartition::install(&ratp, Arc::clone(&cache), vec![NodeId(100)]);
            if i == 0 {
                part.create_segment(seg, 2 * PAGE_SIZE as u64).unwrap();
            }
            let mut s = AddressSpace::new(cache, part as Arc<dyn Partition>);
            s.map(0, seg, 0, 2 * PAGE_SIZE as u64, true).unwrap();
            s
        })
        .collect();
    net.set_loss(loss);
    net.set_duplication(dup);
    (net, spaces)
}

#[test]
fn ping_pong_survives_loss() {
    let (_net, spaces) = bed(31, 0.15, 0.0);
    for round in 0..12u64 {
        spaces[0].write_u64(0, round * 2).unwrap();
        assert_eq!(spaces[1].read_u64(0).unwrap(), round * 2);
        spaces[1].write_u64(0, round * 2 + 1).unwrap();
        assert_eq!(spaces[0].read_u64(0).unwrap(), round * 2 + 1);
    }
}

#[test]
fn ping_pong_survives_duplication() {
    let (_net, spaces) = bed(37, 0.0, 0.4);
    for round in 0..12u64 {
        spaces[0].write_u64(8, round).unwrap();
        assert_eq!(spaces[1].read_u64(8).unwrap(), round);
        spaces[1].write_u64(PAGE_SIZE as u64, round + 100).unwrap();
        assert_eq!(spaces[0].read_u64(PAGE_SIZE as u64).unwrap(), round + 100);
    }
}

#[test]
fn combined_faults_still_one_copy() {
    let (_net, spaces) = bed(41, 0.1, 0.2);
    let mut expected = [0u64; 4];
    for step in 0..40u64 {
        let node = (step % 2) as usize;
        let cell = step % 4;
        let value = step * 7 + 1;
        spaces[node].write_u64(cell * 16, value).unwrap();
        expected[cell as usize] = value;
        // Read back from the *other* node.
        let other = 1 - node;
        assert_eq!(
            spaces[other].read_u64(cell * 16).unwrap(),
            expected[cell as usize],
            "step {step}"
        );
    }
}
