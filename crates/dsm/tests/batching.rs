//! Batched paging: multi-page grants, read-ahead, coalesced write-back.
//!
//! Covers the perf-opt protocol extensions end to end: a `FetchPages`
//! batch must be indistinguishable from per-page fetches (same bytes,
//! same versions), read-ahead must collapse a sequential scan's RPC
//! count, a commit flush must coalesce into one `WriteBackBatch` per
//! home, and none of it may weaken the coherence protocol — a recall
//! landing mid-batch never loses a dirty page.

use clouds_codec::PageBytes;
use clouds_dsm::proto::{
    self, ports, DsmReply, DsmRequest, WireInstallAck, WireMode, WirePageGrant,
};
use clouds_dsm::{DsmClientConfig, DsmClientPartition, DsmServer};
use clouds_ra::{AddressSpace, PageCache, Partition, SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

struct Client {
    part: Arc<DsmClientPartition>,
}

impl Client {
    fn space(&self, seg: SysName, pages: u64) -> AddressSpace {
        let mut s = AddressSpace::new(
            Arc::clone(self.part.cache()),
            Arc::clone(&self.part) as Arc<dyn Partition>,
        );
        s.map(0, seg, 0, pages * PAGE_SIZE as u64, true).unwrap();
        s
    }
}

struct Bed {
    net: Network,
    servers: Vec<Arc<DsmServer>>,
    data_nodes: Vec<NodeId>,
}

impl Bed {
    fn new(n_data: u32) -> Bed {
        let net = Network::new(CostModel::zero());
        let mut servers = Vec::new();
        let mut data_nodes = Vec::new();
        for i in 0..n_data {
            let id = NodeId(100 + i);
            let ratp = RatpNode::spawn(net.register(id).unwrap(), RatpConfig::default());
            servers.push(DsmServer::install(&ratp));
            data_nodes.push(id);
        }
        Bed {
            net,
            servers,
            data_nodes,
        }
    }

    fn client_with_config(&self, id: u32, cache_frames: usize, config: DsmClientConfig) -> Client {
        let ratp = RatpNode::spawn(
            self.net.register(NodeId(id)).unwrap(),
            RatpConfig {
                retry_interval: Duration::from_millis(10),
                max_retries: 100,
                ..RatpConfig::default()
            },
        );
        let cache = Arc::new(PageCache::new(cache_frames));
        Client {
            part: DsmClientPartition::install_with_config(
                &ratp,
                cache,
                self.data_nodes.clone(),
                config,
            ),
        }
    }

    fn client(&self, id: u32, cache_frames: usize) -> Client {
        self.client_with_config(id, cache_frames, DsmClientConfig::default())
    }
}

fn seg(n: u64) -> SysName {
    SysName::from_parts(8, n)
}

/// Acceptance criterion: a 128-page sequential read costs at most 20
/// fetch RPCs (vs 128 unbatched), asserted from both sides of the wire.
#[test]
fn sequential_scan_128_pages_in_at_most_20_rpcs() {
    const PAGES: u64 = 128;
    let bed = Bed::new(1);
    let s = seg(1);
    // Prefill the canonical store directly (written back and released),
    // so the scan pages data "from the data server where it resides"
    // rather than recalling another client's exclusive copies.
    let raw = RatpNode::spawn(
        bed.net.register(NodeId(90)).unwrap(),
        RatpConfig::default(),
    );
    let home = bed.data_nodes[0];
    wire_call(
        &raw,
        home,
        &DsmRequest::CreateSegment {
            seg: s,
            len: PAGES * PAGE_SIZE as u64,
        },
    );
    for page in 0..PAGES {
        let mut data = vec![0u8; PAGE_SIZE];
        data[..8].copy_from_slice(&(page + 7).to_le_bytes());
        wire_call(
            &raw,
            home,
            &DsmRequest::WriteBack {
                seg: s,
                page: page as u32,
                data: PageBytes::from(data),
                release: true,
            },
        );
    }

    let reader = bed.client(2, 256);
    let rs = reader.space(s, PAGES);
    for page in 0..PAGES {
        assert_eq!(rs.read_u64(page * PAGE_SIZE as u64).unwrap(), page + 7);
    }

    let client_stats = reader.part.stats();
    let server_stats = bed.servers[0].stats();
    assert!(
        client_stats.fetch_rpcs <= 20,
        "client issued {} fetch RPCs for a {PAGES}-page scan: {client_stats:?}",
        client_stats.fetch_rpcs
    );
    assert!(client_stats.batch_fetches >= 1, "{client_stats:?}");
    assert!(
        client_stats.prefetch_hits >= PAGES - client_stats.fetch_rpcs,
        "{client_stats:?}"
    );
    assert!(client_stats.rtts_saved >= 100, "{client_stats:?}");
    // The server saw the same picture (writer RPCs included there, so
    // bound only the batching-side counters).
    assert!(server_stats.batch_fetches >= 1, "{server_stats:?}");
    assert!(
        server_stats.prefetch_pages_granted >= PAGES - 20,
        "{server_stats:?}"
    );
}

#[test]
fn read_ahead_disabled_by_config_fetches_per_page() {
    const PAGES: u64 = 16;
    let bed = Bed::new(1);
    let reader = bed.client_with_config(
        1,
        64,
        DsmClientConfig {
            read_ahead_window: 1,
            ..DsmClientConfig::default()
        },
    );
    let s = seg(2);
    reader
        .part
        .create_segment(s, PAGES * PAGE_SIZE as u64)
        .unwrap();
    let rs = reader.space(s, PAGES);
    for page in 0..PAGES {
        rs.read_u64(page * PAGE_SIZE as u64).unwrap();
    }
    let stats = reader.part.stats();
    assert_eq!(stats.fetch_rpcs, PAGES, "{stats:?}");
    assert_eq!(stats.batch_fetches, 0, "{stats:?}");
    assert_eq!(stats.prefetch_installs, 0, "{stats:?}");
}

/// Acceptance criterion: a 32-dirty-page flush to one home costs at most
/// 2 write-back RPCs (one `WriteBackBatch` in practice).
#[test]
fn commit_flush_32_dirty_pages_in_at_most_2_rpcs() {
    const PAGES: u64 = 32;
    let bed = Bed::new(1);
    let c = bed.client(1, 64);
    let s = seg(3);
    c.part.create_segment(s, PAGES * PAGE_SIZE as u64).unwrap();
    let sp = c.space(s, PAGES);
    for page in 0..PAGES {
        sp.write_u64(page * PAGE_SIZE as u64, page + 500).unwrap();
    }
    sp.flush().unwrap();

    let stats = c.part.stats();
    assert!(
        stats.batch_write_back_rpcs <= 2,
        "flush used {} write-back RPCs: {stats:?}",
        stats.batch_write_back_rpcs
    );
    assert_eq!(stats.pages_written_batched, PAGES, "{stats:?}");
    let server_stats = bed.servers[0].stats();
    assert!(server_stats.batch_write_backs <= 2, "{server_stats:?}");
    assert_eq!(server_stats.write_backs, PAGES, "{server_stats:?}");
    // Every page reached the canonical store.
    for page in 0..PAGES {
        let raw = bed.servers[0]
            .store()
            .get(s)
            .unwrap()
            .read()
            .read(page * PAGE_SIZE as u64, 8)
            .unwrap();
        assert_eq!(u64::from_le_bytes(raw.try_into().unwrap()), page + 500);
    }
    // Frames stay resident and clean: a second flush ships nothing.
    sp.flush().unwrap();
    assert_eq!(c.part.stats().pages_written_batched, PAGES);
}

/// A commit flush spanning several home servers ships one batch per
/// home (pipelined), not one RPC per page.
#[test]
fn flush_across_homes_is_one_rpc_per_server() {
    let bed = Bed::new(3);
    let c = bed.client(1, 64);
    let mut segs = Vec::new();
    for (i, &home) in bed.data_nodes.iter().enumerate() {
        let s = seg(40 + i as u64);
        c.part
            .create_segment_at(s, 4 * PAGE_SIZE as u64, home)
            .unwrap();
        segs.push(s);
    }
    let spaces: Vec<AddressSpace> = segs.iter().map(|&s| c.space(s, 4)).collect();
    for (i, sp) in spaces.iter().enumerate() {
        for page in 0..4u64 {
            sp.write_u64(page * PAGE_SIZE as u64, (i as u64 + 1) * 10 + page)
                .unwrap();
        }
    }
    // One flush of the shared cache moves all 12 dirty pages.
    c.part.cache().flush(&*c.part as &dyn Partition).unwrap();
    let stats = c.part.stats();
    assert_eq!(stats.batch_write_back_rpcs, 3, "{stats:?}");
    assert_eq!(stats.pages_written_batched, 12, "{stats:?}");
    for (i, server) in bed.servers.iter().enumerate() {
        assert_eq!(server.stats().write_backs, 4, "server {i}");
    }
}

/// Satellite: a dirty eviction is one round trip (write-back carries the
/// release), not a `WriteBack` followed by a `ReleasePage`.
#[test]
fn dirty_eviction_is_single_round_trip() {
    let bed = Bed::new(1);
    let c = bed.client(1, 1); // capacity 1: every new page evicts
    let s = seg(5);
    c.part.create_segment(s, 4 * PAGE_SIZE as u64).unwrap();
    let sp = c.space(s, 4);
    sp.write_u64(0, 111).unwrap();
    // Faulting page 1 evicts dirty page 0.
    sp.read_u64(PAGE_SIZE as u64).unwrap();
    let stats = c.part.stats();
    assert_eq!(stats.merged_evictions, 1, "{stats:?}");
    assert!(stats.rtts_saved >= 1, "{stats:?}");
    let raw = bed.servers[0]
        .store()
        .get(s)
        .unwrap()
        .read()
        .read(0, 8)
        .unwrap();
    assert_eq!(u64::from_le_bytes(raw.try_into().unwrap()), 111);
}

/// Coherence: a batch grant run must stop at a page someone else holds
/// exclusively — the scan then demand-faults it through the normal
/// downgrade recall and the dirty data survives.
#[test]
fn read_ahead_stops_at_exclusive_page_and_recall_keeps_dirty_data() {
    const PAGES: u64 = 8;
    let bed = Bed::new(1);
    let a = bed.client(1, 64);
    let b = bed.client(2, 64);
    let s = seg(6);
    a.part.create_segment(s, PAGES * PAGE_SIZE as u64).unwrap();
    let sa = a.space(s, PAGES);
    let sb = b.space(s, PAGES);

    // A holds page 5 exclusive and dirty — unflushed.
    sa.write_u64(5 * PAGE_SIZE as u64, 0xD1147).unwrap();

    // B scans the whole segment sequentially with read-ahead on. The
    // batch starting at page 1 may grant at most up to page 4; page 5
    // must come through a full transition that downgrades A.
    for page in 0..PAGES {
        let want = if page == 5 { 0xD1147 } else { 0 };
        assert_eq!(
            sb.read_u64(page * PAGE_SIZE as u64).unwrap(),
            want,
            "page {page}"
        );
    }
    // The downgrade wrote A's dirty page through to the canonical store.
    let raw = bed.servers[0]
        .store()
        .get(s)
        .unwrap()
        .read()
        .read(5 * PAGE_SIZE as u64, 8)
        .unwrap();
    assert_eq!(u64::from_le_bytes(raw.try_into().unwrap()), 0xD1147);
    let server_stats = bed.servers[0].stats();
    assert_eq!(server_stats.downgrades, 1, "{server_stats:?}");
    assert!(b.part.stats().batch_fetches >= 1);
    // A's copy is still resident (shared, clean) and readable.
    assert_eq!(sa.read_u64(5 * PAGE_SIZE as u64).unwrap(), 0xD1147);
}

/// Coherence under contention: a writer keeps re-dirtying pages while a
/// scanner with read-ahead sweeps the segment; every sweep must observe
/// the writer's latest flushed-or-dirtier state and the final store must
/// converge to the last written values.
#[test]
fn writer_vs_sequential_scanner_stays_coherent() {
    const PAGES: u64 = 8;
    let bed = Bed::new(1);
    let w = bed.client(1, 64);
    let r = bed.client(2, 64);
    let s = seg(7);
    w.part.create_segment(s, PAGES * PAGE_SIZE as u64).unwrap();
    let sw = w.space(s, PAGES);
    let sr = r.space(s, PAGES);

    for round in 1..=5u64 {
        for page in 0..PAGES {
            sw.write_u64(page * PAGE_SIZE as u64, round * 100 + page)
                .unwrap();
        }
        // Scan: every page was last written by this round, and reading
        // it downgrades the writer's exclusive dirty copy.
        for page in 0..PAGES {
            assert_eq!(
                sr.read_u64(page * PAGE_SIZE as u64).unwrap(),
                round * 100 + page,
                "round {round} page {page}"
            );
        }
    }
    sw.flush().unwrap();
    for page in 0..PAGES {
        let raw = bed.servers[0]
            .store()
            .get(s)
            .unwrap()
            .read()
            .read(page * PAGE_SIZE as u64, 8)
            .unwrap();
        assert_eq!(u64::from_le_bytes(raw.try_into().unwrap()), 500 + page);
    }
    assert_eq!(bed.servers[0].stats().ack_timeouts, 0);
}

/// Raw-wire helper: a client that installs nothing but acks every grant,
/// so directory transitions never stall on it.
fn ack_all(client: &Arc<RatpNode>, server: NodeId, s: SysName, grants: &[(u32, u64)]) {
    let acks: Vec<WireInstallAck> = grants
        .iter()
        .map(|&(page, grant_seq)| WireInstallAck {
            page,
            grant_seq,
            installed: true,
        })
        .collect();
    let reply = client
        .call(
            server,
            ports::DSM_SERVER,
            proto::encode(&DsmRequest::InstallAckBatch { seg: s, acks }),
        )
        .unwrap();
    assert!(matches!(
        proto::decode::<DsmReply>(&reply).unwrap(),
        DsmReply::Ok
    ));
}

fn wire_call(client: &Arc<RatpNode>, server: NodeId, req: &DsmRequest) -> DsmReply {
    let reply = client
        .call(server, ports::DSM_SERVER, proto::encode(req))
        .unwrap();
    proto::decode(&reply).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A `FetchPages` batch is observationally identical to per-page
    /// `FetchPage` calls: same bytes, same versions, same zero-fill
    /// flags, for arbitrary page contents and window sizes.
    #[test]
    fn batch_grant_matches_per_page_fetches(
        contents in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..64), 1..10),
        window in 1u32..10,
        extra_writes in prop::collection::vec((0usize..10, any::<u8>()), 0..6),
    ) {
        let pages = contents.len() as u32;
        let net = Network::new(CostModel::zero());
        let server_node = NodeId(100);
        let ratp_s = RatpNode::spawn(net.register(server_node).unwrap(), RatpConfig::default());
        let _server = DsmServer::install(&ratp_s);
        let x = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
        let y = RatpNode::spawn(net.register(NodeId(2)).unwrap(), RatpConfig::default());

        let s = seg(9);
        prop_assert!(matches!(
            wire_call(&x, server_node, &DsmRequest::CreateSegment {
                seg: s,
                len: pages as u64 * PAGE_SIZE as u64,
            }),
            DsmReply::Ok
        ));
        // Materialize distinct content (and thus versions) per page;
        // extra writes give some pages higher version counters.
        for (page, bytes) in contents.iter().enumerate() {
            let mut data = vec![0u8; PAGE_SIZE];
            data[..bytes.len()].copy_from_slice(bytes);
            wire_call(&x, server_node, &DsmRequest::WriteBack {
                seg: s, page: page as u32, data: PageBytes::from(data), release: true,
            });
        }
        for &(page, b) in &extra_writes {
            if page < pages as usize {
                let data = vec![b; PAGE_SIZE];
                wire_call(&x, server_node, &DsmRequest::WriteBack {
                    seg: s, page: page as u32, data: PageBytes::from(data), release: true,
                });
            }
        }

        // X: one batch fetch from page 0.
        let batch: Vec<WirePageGrant> = match wire_call(&x, server_node, &DsmRequest::FetchPages {
            seg: s, first: 0, count: window, mode: WireMode::Read,
        }) {
            DsmReply::Pages { first, pages } => {
                prop_assert_eq!(first, 0);
                pages
            }
            other => panic!("no batch grant: {other:?}"),
        };
        // The run is contiguous from 0 and exactly as long as coherence
        // and the segment allow (nothing here blocks it but the end).
        prop_assert_eq!(batch.len() as u32, window.min(pages));
        ack_all(&x, server_node, s,
            &batch.iter().enumerate().map(|(i, g)| (i as u32, g.grant_seq)).collect::<Vec<_>>());

        // Y: the same pages one at a time.
        for (page, from_batch) in batch.iter().enumerate() {
            match wire_call(&y, server_node, &DsmRequest::FetchPage {
                seg: s, page: page as u32, mode: WireMode::Read,
            }) {
                DsmReply::Page { data, version, zero_filled, grant_seq } => {
                    prop_assert_eq!(&data, &from_batch.data, "page {} bytes differ", page);
                    prop_assert_eq!(version, from_batch.version, "page {} version differs", page);
                    prop_assert_eq!(zero_filled, from_batch.zero_filled);
                    ack_all(&y, server_node, s, &[(page as u32, grant_seq)]);
                }
                other => panic!("no single grant: {other:?}"),
            }
        }
    }
}
