//! Integration tests for one-copy semantics across simulated nodes:
//! the §3.2 "Distributed Shared Memory" box, exercised end to end
//! (client partitions + RaTP + coherence directory).

use clouds_dsm::{DsmClientPartition, DsmServer};
use clouds_ra::{AddressSpace, PageCache, Partition, SysName, PAGE_SIZE};
use clouds_ratp::{RatpConfig, RatpNode};
use clouds_simnet::{CostModel, Network, NodeId};
use std::sync::Arc;
use std::time::Duration;

struct Client {
    part: Arc<DsmClientPartition>,
}

impl Client {
    fn space(&self, seg: SysName, pages: u64) -> AddressSpace {
        let mut s = AddressSpace::new(
            Arc::clone(self.part.cache()),
            Arc::clone(&self.part) as Arc<dyn Partition>,
        );
        s.map(0, seg, 0, pages * PAGE_SIZE as u64, true).unwrap();
        s
    }
}

struct Bed {
    net: Network,
    servers: Vec<Arc<DsmServer>>,
    data_nodes: Vec<NodeId>,
}

impl Bed {
    fn new(n_data: u32) -> Bed {
        let net = Network::new(CostModel::zero());
        let mut servers = Vec::new();
        let mut data_nodes = Vec::new();
        for i in 0..n_data {
            let id = NodeId(100 + i);
            let ratp = RatpNode::spawn(net.register(id).unwrap(), RatpConfig::default());
            servers.push(DsmServer::install(&ratp));
            data_nodes.push(id);
        }
        Bed {
            net,
            servers,
            data_nodes,
        }
    }

    fn client(&self, id: u32, cache_frames: usize) -> Client {
        let ratp = RatpNode::spawn(
            self.net.register(NodeId(id)).unwrap(),
            RatpConfig {
                retry_interval: Duration::from_millis(10),
                max_retries: 100,
                ..RatpConfig::default()
            },
        );
        let cache = Arc::new(PageCache::new(cache_frames));
        Client {
            part: DsmClientPartition::install(&ratp, cache, self.data_nodes.clone()),
        }
    }
}

fn seg(n: u64) -> SysName {
    SysName::from_parts(7, n)
}

#[test]
fn write_visible_on_other_node() {
    let bed = Bed::new(1);
    let a = bed.client(1, 64);
    let b = bed.client(2, 64);
    a.part.create_segment(seg(1), 2 * PAGE_SIZE as u64).unwrap();
    let sa = a.space(seg(1), 2);
    let sb = b.space(seg(1), 2);
    sa.write(100, b"from A").unwrap();
    assert_eq!(sb.read(100, 6).unwrap(), b"from A");
}

#[test]
fn ping_pong_ownership_transfer() {
    let bed = Bed::new(1);
    let a = bed.client(1, 64);
    let b = bed.client(2, 64);
    a.part.create_segment(seg(2), PAGE_SIZE as u64).unwrap();
    let sa = a.space(seg(2), 1);
    let sb = b.space(seg(2), 1);
    for round in 0..10u64 {
        sa.write_u64(0, round * 2).unwrap();
        assert_eq!(sb.read_u64(0).unwrap(), round * 2);
        sb.write_u64(0, round * 2 + 1).unwrap();
        assert_eq!(sa.read_u64(0).unwrap(), round * 2 + 1);
    }
    let stats = bed.servers[0].stats();
    assert!(stats.invalidations + stats.downgrades >= 10, "{stats:?}");
}

#[test]
fn concurrent_increments_preserve_total() {
    // Increments are not atomic across nodes without locks, so give each
    // node its own counter in the same page-set and check per-node sums:
    // exercises concurrent exclusive grants without requiring mutual
    // exclusion semantics the DSM layer does not promise.
    let bed = Bed::new(1);
    let s = seg(3);
    let bootstrap = bed.client(99, 16);
    bootstrap
        .part
        .create_segment(s, 4 * PAGE_SIZE as u64)
        .unwrap();
    // Clients outlive their worker threads: a node keeps answering
    // recalls after a thread finishes (dropping it models a crash,
    // which loses dirty data by design).
    let clients: Vec<Client> = (0..4).map(|n| bed.client(n + 1, 16)).collect();
    let mut handles = Vec::new();
    for (n, client) in clients.iter().enumerate() {
        let space = client.space(s, 4);
        handles.push(std::thread::spawn(move || {
            let addr = n as u64 * PAGE_SIZE as u64; // one page per node
            for i in 0..50u64 {
                space.write_u64(addr, i + 1).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let reader = bed.client(50, 16);
    let space = reader.space(s, 4);
    for n in 0..4u64 {
        assert_eq!(space.read_u64(n * PAGE_SIZE as u64).unwrap(), 50);
    }
}

#[test]
fn many_readers_share_then_writer_invalidates() {
    let bed = Bed::new(1);
    let s = seg(4);
    let writer = bed.client(1, 16);
    writer.part.create_segment(s, PAGE_SIZE as u64).unwrap();
    let ws = writer.space(s, 1);
    ws.write(0, b"v1").unwrap();

    let readers: Vec<Client> = (2..6).map(|i| bed.client(i, 16)).collect();
    let spaces: Vec<AddressSpace> = readers.iter().map(|r| r.space(s, 1)).collect();
    for sp in &spaces {
        assert_eq!(sp.read(0, 2).unwrap(), b"v1");
    }
    let before = bed.servers[0].stats();
    ws.write(0, b"v2").unwrap();
    let after = bed.servers[0].stats();
    // The writer's upgrade had to invalidate the shared copies.
    assert!(after.invalidations > before.invalidations);
    for sp in &spaces {
        assert_eq!(sp.read(0, 2).unwrap(), b"v2");
    }
}

#[test]
fn eviction_pressure_stays_coherent() {
    let bed = Bed::new(1);
    let s = seg(5);
    let a = bed.client(1, 2); // tiny cache: constant eviction
    let b = bed.client(2, 2);
    a.part.create_segment(s, 8 * PAGE_SIZE as u64).unwrap();
    let sa = a.space(s, 8);
    let sb = b.space(s, 8);
    for page in 0..8u64 {
        sa.write_u64(page * PAGE_SIZE as u64, page + 1000).unwrap();
    }
    for page in 0..8u64 {
        assert_eq!(sb.read_u64(page * PAGE_SIZE as u64).unwrap(), page + 1000);
    }
    // And back: B dirties everything, A re-reads.
    for page in 0..8u64 {
        sb.write_u64(page * PAGE_SIZE as u64, page + 2000).unwrap();
    }
    for page in 0..8u64 {
        assert_eq!(sa.read_u64(page * PAGE_SIZE as u64).unwrap(), page + 2000);
    }
}

#[test]
fn crashed_owner_loses_uncommitted_data() {
    let bed = Bed::new(1);
    let s = seg(6);
    let a = bed.client(1, 16);
    let b = bed.client(2, 16);
    a.part.create_segment(s, PAGE_SIZE as u64).unwrap();
    let sa = a.space(s, 1);
    sa.write(0, b"committed").unwrap();
    sa.flush().unwrap(); // explicit write-through

    sa.write(0, b"dirty-only").unwrap(); // exclusive + dirty, not flushed
    bed.net.crash(NodeId(1));

    // B must still be able to read; the recall to the dead node times
    // out and the data server serves its canonical (committed) copy.
    let sb = b.space(s, 1);
    assert_eq!(sb.read(0, 9).unwrap(), b"committed");
}

#[test]
fn explicit_placement_and_discovery_across_data_servers() {
    let bed = Bed::new(3);
    let s = seg(7);
    let a = bed.client(1, 16);
    // Place explicitly on the *last* data server regardless of hash.
    let home = bed.data_nodes[2];
    a.part
        .create_segment_at(s, PAGE_SIZE as u64, home)
        .unwrap();
    let sa = a.space(s, 1);
    sa.write(0, b"placed").unwrap();
    sa.flush().unwrap();
    assert!(bed.servers[2].store().contains(s));
    assert!(!bed.servers[0].store().contains(s));

    // A different client with no placement knowledge discovers the home.
    let b = bed.client(2, 16);
    let sb = b.space(s, 1);
    assert_eq!(sb.read(0, 6).unwrap(), b"placed");
    assert_eq!(b.part.segment_len(s).unwrap(), PAGE_SIZE as u64);
}

#[test]
fn segment_destroy_propagates() {
    let bed = Bed::new(1);
    let s = seg(8);
    let a = bed.client(1, 16);
    a.part.create_segment(s, PAGE_SIZE as u64).unwrap();
    a.part.destroy_segment(s).unwrap();
    assert!(a.part.segment_len(s).is_err());
    let b = bed.client(2, 16);
    assert!(b.part.segment_len(s).is_err());
}

#[test]
fn server_stats_match_hand_computed_counts() {
    // A fully deterministic single-page scenario whose coherence traffic
    // can be counted by hand from the protocol rules:
    //
    //   1. A writes   — page Idle, granted Exclusive(A).      wg=1
    //   2. B reads    — recall Downgrade to A (dirty copy):
    //                   write-back + downgrade, then grant.    wb=1 dg=1 rg=1
    //   3. B writes   — page Shared{A,B}: Reclaim A's clean
    //                   copy, grant Exclusive(B).              inv=1 wg=2
    //   4. A reads    — recall Downgrade to B (dirty copy).    wb=2 dg=2 rg=2
    let bed = Bed::new(1);
    let s = seg(10);
    let a = bed.client(1, 16);
    let b = bed.client(2, 16);
    a.part.create_segment(s, PAGE_SIZE as u64).unwrap();
    let sa = a.space(s, 1);
    let sb = b.space(s, 1);

    let before = bed.servers[0].stats();
    sa.write_u64(0, 1).unwrap();
    assert_eq!(sb.read_u64(0).unwrap(), 1);
    sb.write_u64(0, 2).unwrap();
    assert_eq!(sa.read_u64(0).unwrap(), 2);
    let stats = bed.servers[0].stats();

    assert_eq!(stats.write_grants - before.write_grants, 2, "{stats:?}");
    assert_eq!(stats.read_grants - before.read_grants, 2, "{stats:?}");
    assert_eq!(stats.downgrades - before.downgrades, 2, "{stats:?}");
    assert_eq!(stats.invalidations - before.invalidations, 1, "{stats:?}");
    assert_eq!(stats.write_backs - before.write_backs, 2, "{stats:?}");
    // Fault-free network: every recall must have been acknowledged.
    assert_eq!(stats.ack_timeouts, 0, "{stats:?}");
}

#[test]
fn randomized_writers_converge_to_one_copy() {
    use rand::{Rng, SeedableRng};
    let bed = Bed::new(2);
    let s = seg(9);
    let clients: Vec<Client> = (1..5).map(|i| bed.client(i, 8)).collect();
    clients[0]
        .part
        .create_segment(s, 4 * PAGE_SIZE as u64)
        .unwrap();
    let spaces: Vec<AddressSpace> = clients.iter().map(|c| c.space(s, 4)).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut expected = [0u64; 4];
    for step in 0..120 {
        let who = rng.gen_range(0..spaces.len());
        let page = rng.gen_range(0..4usize);
        let value = step as u64 * 10 + who as u64;
        spaces[who]
            .write_u64(page as u64 * PAGE_SIZE as u64, value)
            .unwrap();
        expected[page] = value;
    }
    for sp in &spaces {
        for (page, want) in expected.iter().enumerate() {
            assert_eq!(
                sp.read_u64(page as u64 * PAGE_SIZE as u64).unwrap(),
                *want,
                "page {page}"
            );
        }
    }
}
