//! The data-server side of DSM: canonical storage plus the coherence
//! directory (§4.2 "DSM Clients and Servers").
//!
//! "When a page of data is needed at node A, the DSM client partition
//! requests it from the data server. If the page is currently in use in
//! exclusive mode at node B, the data server forwards the request to the
//! DSM server at node B, which supplies the page to A."
//!
//! The protocol is a centralized-manager invalidation protocol in the
//! Li–Hudak style, managed per page by the data server that homes the
//! segment:
//!
//! * **read fault** — any exclusive copy is downgraded (its dirty data
//!   written through), then a shared copy is granted.
//! * **write fault** — every other copy is recalled (invalidated), dirty
//!   data written through, then exclusive ownership is granted.
//! * **write-back / release** — clients flush or drop copies; the
//!   directory is updated without blocking in-flight transitions (this
//!   non-blocking property is what makes eviction during a concurrent
//!   recall deadlock-free).

use crate::proto::{
    self, ports, DsmReply, DsmRequest, RecallReply, RecallRequest, WireMode,
};
use clouds_ra::{RaError, SegmentStore, SysName};
use clouds_ratp::{RatpNode, Request};
use clouds_simnet::NodeId;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retransmission budget for recall calls; a client that does not answer
/// within this budget is treated as crashed and its copy forgotten.
const RECALL_RETRIES: u32 = 40;

/// How long a transition waits for a grantee's install acknowledgement
/// before assuming the grantee died with the grant in flight.
const ACK_DEADLINE: Duration = Duration::from_millis(1000);

#[derive(Debug, Clone, PartialEq, Eq)]
enum Coherence {
    Idle,
    Shared(HashSet<NodeId>),
    Exclusive(NodeId),
}

#[derive(Debug)]
struct PageEntry {
    state: Coherence,
    /// A coherence transition is running.
    busy: bool,
    /// A grant is awaiting its install acknowledgement:
    /// (grantee, grant sequence, deadline for the ack).
    awaiting_ack: Option<(NodeId, u64, std::time::Instant)>,
}

#[derive(Default)]
struct Directory {
    pages: HashMap<(SysName, u32), PageEntry>,
}

/// Traffic counters for the coherence protocol (experiment E4 reports
/// these as "page migrations").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmServerStats {
    /// Shared-copy grants served.
    pub read_grants: u64,
    /// Exclusive grants served.
    pub write_grants: u64,
    /// Copies invalidated at other nodes on behalf of writers.
    pub invalidations: u64,
    /// Exclusive copies demoted to shared on behalf of readers.
    pub downgrades: u64,
    /// Dirty pages written through to the canonical store.
    pub write_backs: u64,
    /// Install acknowledgements that never arrived (dead grantees or
    /// callers that bypassed the ack protocol — a bug if nonzero in a
    /// healthy run).
    pub ack_timeouts: u64,
}

/// A data server's DSM service.
///
/// Owns the canonical [`SegmentStore`] — the only durable copy of every
/// segment it homes — and the per-page coherence directory. Created with
/// [`DsmServer::install`], which registers the service on
/// [`ports::DSM_SERVER`].
pub struct DsmServer {
    ratp: Arc<RatpNode>,
    store: SegmentStore,
    directory: Mutex<Directory>,
    busy_cvar: Condvar,
    read_grants: AtomicU64,
    write_grants: AtomicU64,
    invalidations: AtomicU64,
    downgrades: AtomicU64,
    write_backs: AtomicU64,
    grant_seq: AtomicU64,
    ack_timeouts: AtomicU64,
}

impl fmt::Debug for DsmServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsmServer")
            .field("node", &self.ratp.node_id())
            .field("segments", &self.store.len())
            .finish()
    }
}

impl DsmServer {
    /// Create the server over a fresh store and register its RaTP
    /// service.
    pub fn install(ratp: &Arc<RatpNode>) -> Arc<DsmServer> {
        DsmServer::install_with_store(ratp, SegmentStore::new())
    }

    /// Like [`DsmServer::install`] but over an existing store — used
    /// when a crashed data server restarts with its surviving disk.
    pub fn install_with_store(ratp: &Arc<RatpNode>, store: SegmentStore) -> Arc<DsmServer> {
        let server = Arc::new(DsmServer {
            ratp: Arc::clone(ratp),
            store,
            directory: Mutex::new(Directory::default()),
            busy_cvar: Condvar::new(),
            read_grants: AtomicU64::new(0),
            write_grants: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            downgrades: AtomicU64::new(0),
            write_backs: AtomicU64::new(0),
            grant_seq: AtomicU64::new(1),
            ack_timeouts: AtomicU64::new(0),
        });
        let handler = Arc::clone(&server);
        ratp.register_service(ports::DSM_SERVER, move |req: Request| {
            let reply = match proto::decode::<DsmRequest>(&req.payload) {
                Ok(message) => handler.handle(req.src, message),
                Err(e) => DsmReply::Err(e.into()),
            };
            proto::encode(&reply)
        });
        server
    }

    /// The canonical segment store (shared with co-located services such
    /// as the 2PC participant).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// The node this server runs on.
    pub fn node_id(&self) -> NodeId {
        self.ratp.node_id()
    }

    /// Snapshot of protocol counters.
    pub fn stats(&self) -> DsmServerStats {
        DsmServerStats {
            read_grants: self.read_grants.load(Ordering::Relaxed),
            write_grants: self.write_grants.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            downgrades: self.downgrades.load(Ordering::Relaxed),
            write_backs: self.write_backs.load(Ordering::Relaxed),
            ack_timeouts: self.ack_timeouts.load(Ordering::Relaxed),
        }
    }

    /// Coherently install a page image: recalls every cached copy at
    /// other nodes, then writes the data to the canonical store. Used by
    /// the two-phase-commit participant to make committed cp-thread
    /// updates visible with one-copy semantics.
    ///
    /// # Errors
    ///
    /// Propagates store errors (unknown segment, bad page).
    pub fn commit_page(&self, seg: SysName, page: u32, data: &[u8]) -> clouds_ra::Result<u64> {
        let key = (seg, page);
        let state = self.begin_transition(key);
        match state {
            Coherence::Exclusive(owner) => {
                // Any dirty data at the owner loses to the committed
                // image: the commit holds the write lock, so a correct
                // cp/s-thread mix cannot produce a competing dirty copy.
                let _ = self.recall(owner, RecallRequest::Reclaim { seg, page });
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
            Coherence::Shared(set) => {
                for holder in set {
                    let _ = self.recall(holder, RecallRequest::Reclaim { seg, page });
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
            }
            Coherence::Idle => {}
        }
        let result = (|| {
            let segment = self.store.get(seg)?;
            let version = segment.write().write_page(page, data)?;
            self.write_backs.fetch_add(1, Ordering::Relaxed);
            Ok(version)
        })();
        self.end_transition(key, Coherence::Idle);
        result
    }

    /// Forget all coherence state (crash simulation: the directory is
    /// volatile, the store is not).
    pub fn clear_directory(&self) {
        self.directory.lock().pages.clear();
        self.busy_cvar.notify_all();
    }

    fn handle(&self, src: NodeId, req: DsmRequest) -> DsmReply {
        match req {
            DsmRequest::CreateSegment { seg, len } => match self.store.create(seg, len) {
                Ok(()) => DsmReply::Ok,
                Err(e) => DsmReply::Err(e.into()),
            },
            DsmRequest::DestroySegment { seg } => match self.store.destroy(seg) {
                Ok(()) => {
                    self.directory.lock().pages.retain(|(s, _), _| *s != seg);
                    DsmReply::Ok
                }
                Err(e) => DsmReply::Err(e.into()),
            },
            DsmRequest::SegmentLen { seg } => match self.store.get(seg) {
                Ok(s) => DsmReply::Len(s.read().len()),
                Err(e) => DsmReply::Err(e.into()),
            },
            DsmRequest::FetchPage { seg, page, mode } => self.fetch(src, seg, page, mode),
            DsmRequest::WriteBack {
                seg,
                page,
                data,
                release,
            } => self.write_back(src, seg, page, &data, release),
            DsmRequest::ReleasePage { seg, page } => {
                self.forget_copy(src, seg, page);
                DsmReply::Ok
            }
            DsmRequest::InstallAck {
                seg,
                page,
                grant_seq,
            } => {
                self.handle_install_ack(src, seg, page, grant_seq);
                DsmReply::Ok
            }
        }
    }

    /// Serialize coherence transitions per page: acquire the busy flag,
    /// also waiting out any unacknowledged previous grant (otherwise a
    /// recall could reach the grantee before the granted frame is
    /// installed and wrongly conclude the copy does not exist).
    fn begin_transition(&self, key: (SysName, u32)) -> Coherence {
        let mut dir = self.directory.lock();
        loop {
            let entry = dir.pages.entry(key).or_insert(PageEntry {
                state: Coherence::Idle,
                busy: false,
                awaiting_ack: None,
            });
            if !entry.busy {
                match entry.awaiting_ack {
                    None => {
                        entry.busy = true;
                        return entry.state.clone();
                    }
                    Some((_, _, deadline)) if Instant::now() >= deadline => {
                        // Grantee never confirmed: assume it crashed with
                        // the grant in flight; its copy is gone.
                        self.ack_timeouts.fetch_add(1, Ordering::Relaxed);
                        entry.awaiting_ack = None;
                        entry.busy = true;
                        return entry.state.clone();
                    }
                    Some((_, _, deadline)) => {
                        let _ = self.busy_cvar.wait_until(&mut dir, deadline);
                        continue;
                    }
                }
            }
            self.busy_cvar.wait(&mut dir);
        }
    }

    fn end_transition(&self, key: (SysName, u32), new_state: Coherence) {
        let mut dir = self.directory.lock();
        if let Some(entry) = dir.pages.get_mut(&key) {
            // A voluntary release/write-back may have mutated the state
            // while we were recalling; the transition's outcome wins,
            // because recalls observed (or outwaited) those copies.
            entry.state = new_state;
            entry.busy = false;
        }
        self.busy_cvar.notify_all();
    }

    /// Finish a transition that granted a page to `grantee`: the next
    /// transition for this page must wait for the install ack.
    fn end_transition_granted(
        &self,
        key: (SysName, u32),
        new_state: Coherence,
        grantee: NodeId,
        grant_seq: u64,
    ) {
        let mut dir = self.directory.lock();
        if let Some(entry) = dir.pages.get_mut(&key) {
            entry.state = new_state;
            entry.busy = false;
            entry.awaiting_ack = Some((grantee, grant_seq, Instant::now() + ACK_DEADLINE));
        }
        self.busy_cvar.notify_all();
    }

    fn handle_install_ack(&self, src: NodeId, seg: SysName, page: u32, grant_seq: u64) {
        let mut dir = self.directory.lock();
        if let Some(entry) = dir.pages.get_mut(&(seg, page)) {
            if let Some((node, seq, _)) = entry.awaiting_ack {
                if node == src && seq == grant_seq {
                    entry.awaiting_ack = None;
                }
            }
        }
        self.busy_cvar.notify_all();
    }

    fn fetch(&self, src: NodeId, seg: SysName, page: u32, mode: WireMode) -> DsmReply {
        // Validate before touching coherence state.
        if let Err(e) = self.store.get(seg) {
            return DsmReply::Err(e.into());
        }
        let key = (seg, page);
        let state = self.begin_transition(key);

        let new_state = match (mode, state) {
            (WireMode::Read, Coherence::Exclusive(owner)) if owner != src => {
                match self.recall(owner, RecallRequest::Downgrade { seg, page }) {
                    RecallReply::Dirty(data) => {
                        self.apply_write_back(seg, page, &data);
                        self.downgrades.fetch_add(1, Ordering::Relaxed);
                        Coherence::Shared(HashSet::from([owner, src]))
                    }
                    RecallReply::Clean => {
                        self.downgrades.fetch_add(1, Ordering::Relaxed);
                        Coherence::Shared(HashSet::from([owner, src]))
                    }
                    RecallReply::NotPresent => Coherence::Shared(HashSet::from([src])),
                }
            }
            (WireMode::Read, Coherence::Exclusive(_owner)) => {
                // Re-fetch by the owner itself (e.g. after dropping its
                // frame); demote to shared.
                Coherence::Shared(HashSet::from([src]))
            }
            (WireMode::Read, Coherence::Shared(mut set)) => {
                set.insert(src);
                Coherence::Shared(set)
            }
            (WireMode::Read, Coherence::Idle) => Coherence::Shared(HashSet::from([src])),
            (WireMode::Write, Coherence::Exclusive(owner)) if owner != src => {
                match self.recall(owner, RecallRequest::Reclaim { seg, page }) {
                    RecallReply::Dirty(data) => {
                        self.apply_write_back(seg, page, &data);
                        self.invalidations.fetch_add(1, Ordering::Relaxed);
                    }
                    RecallReply::Clean => {
                        self.invalidations.fetch_add(1, Ordering::Relaxed);
                    }
                    RecallReply::NotPresent => {}
                }
                Coherence::Exclusive(src)
            }
            (WireMode::Write, Coherence::Exclusive(_owner)) => Coherence::Exclusive(src),
            (WireMode::Write, Coherence::Shared(set)) => {
                for holder in set {
                    if holder == src {
                        continue;
                    }
                    match self.recall(holder, RecallRequest::Reclaim { seg, page }) {
                        RecallReply::Dirty(data) => {
                            // Shared copies are clean by protocol, but be
                            // liberal in what we accept.
                            self.apply_write_back(seg, page, &data);
                            self.invalidations.fetch_add(1, Ordering::Relaxed);
                        }
                        RecallReply::Clean => {
                            self.invalidations.fetch_add(1, Ordering::Relaxed);
                        }
                        RecallReply::NotPresent => {}
                    }
                }
                Coherence::Exclusive(src)
            }
            (WireMode::Write, Coherence::Idle) => Coherence::Exclusive(src),
        };

        let grant_seq = self.grant_seq.fetch_add(1, Ordering::Relaxed);
        let reply = match self.read_canonical(seg, page, grant_seq) {
            Ok(reply) => {
                match mode {
                    WireMode::Read => self.read_grants.fetch_add(1, Ordering::Relaxed),
                    WireMode::Write => self.write_grants.fetch_add(1, Ordering::Relaxed),
                };
                reply
            }
            Err(e) => {
                self.end_transition(key, Coherence::Idle);
                return DsmReply::Err(e.into());
            }
        };
        self.end_transition_granted(key, new_state, src, grant_seq);
        reply
    }

    fn read_canonical(&self, seg: SysName, page: u32, grant_seq: u64) -> Result<DsmReply, RaError> {
        let segment = self.store.get(seg)?;
        let segment = segment.read();
        let zero_filled = !segment.is_page_materialized(page);
        let data = segment.read_page(page)?;
        Ok(DsmReply::Page {
            data,
            version: segment.page_version(page),
            zero_filled,
            grant_seq,
        })
    }

    /// Ask `holder` to give up (or demote) its copy. A dead or
    /// unreachable holder is treated as holding nothing: its volatile
    /// copy died with it.
    fn recall(&self, holder: NodeId, req: RecallRequest) -> RecallReply {
        match self.ratp.call_with_budget(
            holder,
            ports::DSM_CLIENT,
            proto::encode(&req),
            RECALL_RETRIES,
        ) {
            Ok(reply) => proto::decode(&reply).unwrap_or(RecallReply::NotPresent),
            Err(_) => RecallReply::NotPresent,
        }
    }

    fn apply_write_back(&self, seg: SysName, page: u32, data: &[u8]) {
        if let Ok(segment) = self.store.get(seg) {
            if segment.write().write_page(page, data).is_ok() {
                self.write_backs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Note: deliberately does *not* take the busy flag — see the module
    /// docs on deadlock freedom.
    fn write_back(
        &self,
        src: NodeId,
        seg: SysName,
        page: u32,
        data: &[u8],
        release: bool,
    ) -> DsmReply {
        match self.store.get(seg) {
            Ok(segment) => {
                if let Err(e) = segment.write().write_page(page, data) {
                    return DsmReply::Err(e.into());
                }
                self.write_backs.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => return DsmReply::Err(e.into()),
        }
        if release {
            self.forget_copy(src, seg, page);
        }
        DsmReply::Ok
    }

    fn forget_copy(&self, src: NodeId, seg: SysName, page: u32) {
        let mut dir = self.directory.lock();
        if let Some(entry) = dir.pages.get_mut(&(seg, page)) {
            match &mut entry.state {
                Coherence::Exclusive(owner) if *owner == src => {
                    entry.state = Coherence::Idle;
                }
                Coherence::Shared(set) => {
                    set.remove(&src);
                    if set.is_empty() {
                        entry.state = Coherence::Idle;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clouds_ratp::RatpConfig;
    use clouds_simnet::{CostModel, Network};

    fn server() -> (Network, Arc<DsmServer>, Arc<RatpNode>) {
        let net = Network::new(CostModel::zero());
        let ds = RatpNode::spawn(net.register(NodeId(10)).unwrap(), RatpConfig::default());
        let server = DsmServer::install(&ds);
        let client = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
        (net, server, client)
    }

    fn call(client: &RatpNode, req: &DsmRequest) -> DsmReply {
        let reply = client
            .call(NodeId(10), ports::DSM_SERVER, proto::encode(req))
            .unwrap();
        proto::decode(&reply).unwrap()
    }

    #[test]
    fn create_len_destroy_over_the_wire() {
        let (_net, _server, client) = server();
        let seg = SysName::from_parts(1, 1);
        assert!(matches!(
            call(&client, &DsmRequest::CreateSegment { seg, len: 100 }),
            DsmReply::Ok
        ));
        assert!(matches!(
            call(&client, &DsmRequest::SegmentLen { seg }),
            DsmReply::Len(100)
        ));
        assert!(matches!(
            call(&client, &DsmRequest::CreateSegment { seg, len: 5 }),
            DsmReply::Err(crate::proto::WireError::SegmentExists(_))
        ));
        assert!(matches!(
            call(&client, &DsmRequest::DestroySegment { seg }),
            DsmReply::Ok
        ));
        assert!(matches!(
            call(&client, &DsmRequest::SegmentLen { seg }),
            DsmReply::Err(crate::proto::WireError::SegmentNotFound(_))
        ));
    }

    #[test]
    fn fetch_grants_and_counts() {
        let (_net, server, client) = server();
        let seg = SysName::from_parts(1, 2);
        call(
            &client,
            &DsmRequest::CreateSegment {
                seg,
                len: clouds_ra::PAGE_SIZE as u64,
            },
        );
        let reply = call(
            &client,
            &DsmRequest::FetchPage {
                seg,
                page: 0,
                mode: WireMode::Read,
            },
        );
        match reply {
            DsmReply::Page {
                data, zero_filled, ..
            } => {
                assert_eq!(data.len(), clouds_ra::PAGE_SIZE);
                assert!(zero_filled);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.stats().read_grants, 1);
    }

    #[test]
    fn write_back_persists() {
        let (_net, server, client) = server();
        let seg = SysName::from_parts(1, 3);
        call(
            &client,
            &DsmRequest::CreateSegment {
                seg,
                len: clouds_ra::PAGE_SIZE as u64,
            },
        );
        let mut page = vec![0u8; clouds_ra::PAGE_SIZE];
        page[..5].copy_from_slice(b"hello");
        assert!(matches!(
            call(
                &client,
                &DsmRequest::WriteBack {
                    seg,
                    page: 0,
                    data: page,
                    release: true
                }
            ),
            DsmReply::Ok
        ));
        let stored = server.store().get(seg).unwrap().read().read(0, 5).unwrap();
        assert_eq!(&stored, b"hello");
        assert_eq!(server.stats().write_backs, 1);
    }

    #[test]
    fn fetch_of_unknown_segment_is_error() {
        let (_net, _server, client) = server();
        let reply = call(
            &client,
            &DsmRequest::FetchPage {
                seg: SysName::from_parts(9, 9),
                page: 0,
                mode: WireMode::Read,
            },
        );
        assert!(matches!(
            reply,
            DsmReply::Err(crate::proto::WireError::SegmentNotFound(_))
        ));
    }

    #[test]
    fn out_of_range_page_is_error() {
        let (_net, _server, client) = server();
        let seg = SysName::from_parts(1, 4);
        call(&client, &DsmRequest::CreateSegment { seg, len: 10 });
        let reply = call(
            &client,
            &DsmRequest::FetchPage {
                seg,
                page: 5,
                mode: WireMode::Read,
            },
        );
        assert!(matches!(
            reply,
            DsmReply::Err(crate::proto::WireError::OutOfRange(_))
        ));
    }
}
