//! The data-server side of DSM: canonical storage plus the coherence
//! directory (§4.2 "DSM Clients and Servers").
//!
//! "When a page of data is needed at node A, the DSM client partition
//! requests it from the data server. If the page is currently in use in
//! exclusive mode at node B, the data server forwards the request to the
//! DSM server at node B, which supplies the page to A."
//!
//! The protocol is a centralized-manager invalidation protocol in the
//! Li–Hudak style, managed per page by the data server that homes the
//! segment:
//!
//! * **read fault** — any exclusive copy is downgraded (its dirty data
//!   written through), then a shared copy is granted.
//! * **write fault** — every other copy is recalled (invalidated), dirty
//!   data written through, then exclusive ownership is granted.
//! * **write-back / release** — clients flush or drop copies; the
//!   directory is updated without blocking in-flight transitions (this
//!   non-blocking property is what makes eviction during a concurrent
//!   recall deadlock-free).
//!
//! # Directory sharding
//!
//! The coherence directory is striped across [`DIR_SHARDS`] independent
//! shards, each holding its own page map, mutex and condvar. A page's
//! shard is a pure function of its `(segment, page)` key, so every
//! per-page transition touches exactly one shard and unrelated pages
//! never contend on a global lock — concurrent clients scanning
//! different segments proceed fully in parallel.
//!
//! **Lock-order rule for stripes:** no code path ever holds two shard
//! locks at once. Per-page operations lock only their own shard;
//! whole-directory sweeps (`clear_directory`, segment destroy) visit
//! shards one at a time in ascending index order, releasing each guard
//! before taking the next. Acquisition in a fixed index order with at
//! most one stripe held makes the stripe family acyclic by construction,
//! which is exactly the shape `clouds-lint`'s lock-order rule verifies
//! for indexed (`shards[i]`) receivers.

use crate::proto::{
    self, ports, DsmReply, DsmRequest, RecallReply, RecallRequest, WireMode, WirePageGrant,
    WireWriteBack,
};
use clouds_codec::PageBytes;
use clouds_obs::{Counter, Histogram, NodeObs};
use clouds_ra::{RaError, SegmentStore, SysName};
use clouds_store::{
    replay_cost, IntentPage, LogConfig, LogRecord, LogStore, ReplayOutcome, ReplicaRecord,
};
use clouds_ratp::{CallError, RatpNode, Request};
use clouds_simnet::NodeId;
use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Retransmission budget for recall calls; a client that does not answer
/// within this budget is treated as crashed and its copy forgotten.
const RECALL_RETRIES: u32 = 40;

/// How long a transition waits for a grantee's install acknowledgement
/// before assuming the grantee died with the grant in flight.
const ACK_DEADLINE: Duration = Duration::from_millis(1000);

/// Retransmission budget for mirror pushes to backups. Patient on
/// purpose: a backup in a crash window restarts within the fault
/// schedule's horizon, and a primary must *block* (not drop the mirror)
/// so no write is ever acknowledged that a promoted backup could miss —
/// durability over write availability.
const MIRROR_RETRIES: u32 = 800;

/// Default number of directory stripes. Power of two so the shard index
/// is a mask, sized past the handler-thread parallelism a node sees.
pub const DIR_SHARDS: usize = 8;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Coherence {
    Idle,
    Shared(HashSet<NodeId>),
    Exclusive(NodeId),
}

#[derive(Debug)]
struct PageEntry {
    state: Coherence,
    /// A coherence transition is running.
    busy: bool,
    /// A grant is awaiting its install acknowledgement:
    /// (grantee, grant sequence, deadline for the ack).
    awaiting_ack: Option<(NodeId, u64, std::time::Instant)>,
}

/// One stripe of the coherence directory: a page map plus the condvar
/// transitions wait on. Pages hash to exactly one stripe, so per-page
/// work never crosses stripes.
struct DirShard {
    pages: Mutex<HashMap<(SysName, u32), PageEntry>>,
    busy_cvar: Condvar,
}

impl DirShard {
    fn new() -> DirShard {
        DirShard {
            pages: Mutex::new(HashMap::new()),
            busy_cvar: Condvar::new(),
        }
    }
}

/// One stripe of the mirror version map (same page→stripe function as
/// the directory): highest primary-side version applied per mirrored
/// page; orders racing mirror pushes and absorbs duplicates.
struct MirrorShard {
    versions: Mutex<BTreeMap<(SysName, u32), u64>>,
}

impl MirrorShard {
    fn new() -> MirrorShard {
        MirrorShard {
            versions: Mutex::new(BTreeMap::new()),
        }
    }
}

/// Replica configuration of one replicated segment, as this server
/// currently believes it: the full membership in promotion order
/// (`members[0]` is the primary) and the epoch fencing re-homing.
///
/// Like the [`SegmentStore`], this map is volatile: the durable "which
/// disks hold this segment" record is the `ReplicaConfig` entry in the
/// append-only log, from which a restart reconstructs this view before
/// the naming-directory resync refines it. A restarted ex-primary may
/// hold a *stale* view; every mirror push carries the sender's view and
/// epoch so stale receivers adopt the newer configuration lazily, and
/// [`DsmServer::adopt_replica_config`] lets a rebooting server resync
/// from the naming directory eagerly.
#[derive(Debug, Clone)]
struct ReplicaState {
    members: Vec<NodeId>,
    epoch: u64,
}

/// Traffic counters for the coherence protocol (experiment E4 reports
/// these as "page migrations").
///
/// This is a *read shim*: the live counters are `dsm.server.*` entries
/// in the node's [`clouds_obs::MetricsRegistry`], and
/// [`DsmServer::stats`] assembles this snapshot from them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmServerStats {
    /// Shared-copy grants served.
    pub read_grants: u64,
    /// Exclusive grants served.
    pub write_grants: u64,
    /// Copies invalidated at other nodes on behalf of writers.
    pub invalidations: u64,
    /// Exclusive copies demoted to shared on behalf of readers.
    pub downgrades: u64,
    /// Dirty pages written through to the canonical store.
    pub write_backs: u64,
    /// Install acknowledgements that never arrived (dead grantees or
    /// callers that bypassed the ack protocol — a bug if nonzero in a
    /// healthy run).
    pub ack_timeouts: u64,
    /// Fetch RPCs served (`FetchPage` + `FetchPages`); with batching on,
    /// this grows much slower than the grant counters.
    pub fetch_rpcs: u64,
    /// `FetchPages` RPCs served (subset of `fetch_rpcs`).
    pub batch_fetches: u64,
    /// Read-ahead pages granted speculatively beyond the faulting page.
    pub prefetch_pages_granted: u64,
    /// `WriteBackBatch` RPCs served (each may carry many pages, all
    /// counted individually in `write_backs`).
    pub batch_write_backs: u64,
    /// Mirror pushes sent to backups (one per page per backup).
    pub mirror_writes: u64,
    /// Mirror pushes received and applied to the local store (stale or
    /// duplicate pushes are confirmed but not re-applied, and not
    /// counted).
    pub mirror_applies: u64,
    /// Promotions applied: this server assumed the primary role for a
    /// segment.
    pub promotions: u64,
    /// Directory-stripe lock acquisitions that found the stripe already
    /// held and had to block (a measure of residual contention; stays
    /// near zero when the stripe count exceeds the client parallelism).
    pub shard_contention: u64,
}

/// What a log replay hands to the co-located 2PC participant: pending
/// (prepared-but-unresolved) intents by transaction id, and the set of
/// transactions the local outcome registry durably committed.
pub type RecoveredTxns = (BTreeMap<u64, Vec<IntentPage>>, BTreeSet<u64>);

/// A data server's DSM service.
///
/// Owns the canonical [`SegmentStore`] — the only durable copy of every
/// segment it homes — and the per-page coherence directory. Created with
/// [`DsmServer::install`], which registers the service on
/// [`ports::DSM_SERVER`].
pub struct DsmServer {
    ratp: Arc<RatpNode>,
    /// Volatile page cache over the log ([`DsmServer::log`]); every
    /// durable mutation appends to the log before it is acknowledged.
    store: SegmentStore,
    /// The append-only log: the only state that survives a crash.
    log: Arc<LogStore>,
    /// The striped coherence directory; see the module docs on the
    /// stripe lock-order rule.
    shards: Vec<DirShard>,
    /// Mirror version stripes, indexed by the same page→stripe function.
    mirror_shards: Vec<MirrorShard>,
    /// Replica configuration per replicated segment (absent for plain
    /// single-home segments). `BTreeMap` so enumeration is deterministic;
    /// `RwLock` because the hot path (`check_serving`, on every request)
    /// only reads it.
    replicas: RwLock<BTreeMap<SysName, ReplicaState>>,
    /// Set across a crash/restart: while recovering, replicated segments
    /// are not served (the local replica view may predate a promotion
    /// that happened while this server was down — serving on it would be
    /// a split brain). Cleared once the view is resynced from naming.
    recovering: AtomicBool,
    /// Set by [`DsmServer::wipe_store`] (the machine is down, its DRAM
    /// gone) and cleared by [`DsmServer::recover_from_log`]: between the
    /// two, the volatile maps are *empty*, not *valid*, and nothing —
    /// not even the failover monitor's trivially-successful refresh of
    /// zero segments — may lift the recovery fence.
    needs_replay: AtomicBool,
    /// Pending 2PC intents and recorded outcomes reconstructed by the
    /// last [`DsmServer::recover_from_log`] pass, parked here until the
    /// co-located commit participant collects them
    /// ([`DsmServer::take_recovered_txns`]).
    recovered_txns: Mutex<Option<RecoveredTxns>>,
    obs: Arc<NodeObs>,
    metrics: ServerMetrics,
    grant_seq: AtomicU64,
}

/// Registry-backed counter handles, resolved once at install time so the
/// hot paths never go through the registry map.
struct ServerMetrics {
    read_grants: Arc<Counter>,
    write_grants: Arc<Counter>,
    invalidations: Arc<Counter>,
    downgrades: Arc<Counter>,
    write_backs: Arc<Counter>,
    ack_timeouts: Arc<Counter>,
    fetch_rpcs: Arc<Counter>,
    batch_fetches: Arc<Counter>,
    prefetch_pages_granted: Arc<Counter>,
    batch_write_backs: Arc<Counter>,
    mirror_writes: Arc<Counter>,
    mirror_applies: Arc<Counter>,
    promotions: Arc<Counter>,
    shard_contention: Arc<Counter>,
    /// Virtual time spent replaying the log on restart.
    replay: Arc<Histogram>,
    /// One grant counter per directory stripe (`dsm.server.shardN.grants`),
    /// indexed by stripe; shows whether the page hash spreads load.
    shard_grants: Vec<Arc<Counter>>,
}

/// Resolve the grant counter for stripe `idx`. The obs-schema lint wants
/// metric names as string literals at the `counter` call site, so the
/// stripe family is spelled out; stripe counts above eight fold onto the
/// eight schema names.
fn shard_grant_counter(obs: &NodeObs, idx: usize) -> Arc<Counter> {
    match idx & (DIR_SHARDS - 1) {
        0 => obs.counter("dsm.server.shard0.grants"),
        1 => obs.counter("dsm.server.shard1.grants"),
        2 => obs.counter("dsm.server.shard2.grants"),
        3 => obs.counter("dsm.server.shard3.grants"),
        4 => obs.counter("dsm.server.shard4.grants"),
        5 => obs.counter("dsm.server.shard5.grants"),
        6 => obs.counter("dsm.server.shard6.grants"),
        _ => obs.counter("dsm.server.shard7.grants"),
    }
}

impl ServerMetrics {
    fn new(obs: &NodeObs, shard_count: usize) -> ServerMetrics {
        ServerMetrics {
            read_grants: obs.counter("dsm.server.read_grants"),
            write_grants: obs.counter("dsm.server.write_grants"),
            invalidations: obs.counter("dsm.server.invalidations"),
            downgrades: obs.counter("dsm.server.downgrades"),
            write_backs: obs.counter("dsm.server.write_backs"),
            ack_timeouts: obs.counter("dsm.server.ack_timeouts"),
            fetch_rpcs: obs.counter("dsm.server.fetch_rpcs"),
            batch_fetches: obs.counter("dsm.server.batch_fetches"),
            prefetch_pages_granted: obs.counter("dsm.server.prefetch_pages_granted"),
            batch_write_backs: obs.counter("dsm.server.batch_write_backs"),
            mirror_writes: obs.counter("dsm.server.mirror_writes"),
            mirror_applies: obs.counter("dsm.server.mirror_applies"),
            promotions: obs.counter("dsm.server.promotions"),
            shard_contention: obs.counter("dsm.server.shard_contention"),
            replay: obs.histogram("store.replay"),
            shard_grants: (0..shard_count)
                .map(|i| shard_grant_counter(obs, i))
                .collect(),
        }
    }
}

impl fmt::Debug for DsmServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsmServer")
            .field("node", &self.ratp.node_id())
            .field("segments", &self.store.len())
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl DsmServer {
    /// Create the server over a fresh store and register its RaTP
    /// service.
    pub fn install(ratp: &Arc<RatpNode>) -> Arc<DsmServer> {
        DsmServer::install_with_store(ratp, SegmentStore::new())
    }

    /// Like [`DsmServer::install`] but over an existing store — used
    /// when a crashed data server restarts with its surviving disk.
    pub fn install_with_store(ratp: &Arc<RatpNode>, store: SegmentStore) -> Arc<DsmServer> {
        DsmServer::install_sharded(ratp, store, DIR_SHARDS)
    }

    /// Like [`DsmServer::install_with_store`] with an explicit directory
    /// stripe count — a one-shard server degenerates to the old
    /// coarse-locked directory, which the equivalence tests pit against
    /// the striped default.
    ///
    /// # Panics
    ///
    /// Panics unless `shard_count` is a nonzero power of two.
    pub fn install_sharded(
        ratp: &Arc<RatpNode>,
        store: SegmentStore,
        shard_count: usize,
    ) -> Arc<DsmServer> {
        assert!(
            shard_count.is_power_of_two(),
            "directory shard count must be a nonzero power of two"
        );
        let obs = Arc::clone(ratp.obs());
        let metrics = ServerMetrics::new(&obs, shard_count);
        let log = Arc::new(LogStore::with_obs(LogConfig::default(), &obs));
        let server = Arc::new(DsmServer {
            ratp: Arc::clone(ratp),
            store,
            log,
            shards: (0..shard_count).map(|_| DirShard::new()).collect(),
            mirror_shards: (0..shard_count).map(|_| MirrorShard::new()).collect(),
            replicas: RwLock::new(BTreeMap::new()),
            recovering: AtomicBool::new(false),
            needs_replay: AtomicBool::new(false),
            recovered_txns: Mutex::new(None),
            obs,
            metrics,
            grant_seq: AtomicU64::new(1),
        });
        let handler = Arc::clone(&server);
        ratp.register_service(ports::DSM_SERVER, move |req: Request| {
            handler.serve_wire(req.src, &req.payload)
        });
        server
    }

    /// Decode one wire request, serve it, and encode the reply — the
    /// body of the registered RaTP service, exposed so in-process
    /// callers (benches, co-located services) can exercise the page
    /// hot path without paying for transport.
    ///
    /// Shared decode: page payloads inside the request become
    /// refcounted slices of the request buffer instead of fresh
    /// allocations.
    pub fn serve_wire(&self, src: NodeId, payload: &bytes::Bytes) -> bytes::Bytes {
        let reply = match proto::decode_shared::<DsmRequest>(payload) {
            Ok(message) => self.handle(src, message),
            Err(e) => DsmReply::Err(e.into()),
        };
        proto::encode(&reply)
    }

    /// The directory stripe owning `key`: a deterministic mix of the
    /// 128-bit sysname and the page index, masked to the stripe count.
    /// Pure arithmetic (no per-process hasher seed) so runs are
    /// reproducible and a one-shard and an eight-shard server agree on
    /// every placement decision trivially.
    fn shard_index(&self, key: (SysName, u32)) -> usize {
        let raw = key.0.as_u128();
        let mut h = (raw as u64)
            ^ ((raw >> 64) as u64)
            ^ u64::from(key.1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        (h as usize) & (self.shards.len() - 1)
    }

    /// Lock one directory stripe, counting the acquisitions that had to
    /// block behind another holder.
    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, HashMap<(SysName, u32), PageEntry>> {
        if let Some(guard) = self.shards[idx].pages.try_lock() {
            return guard;
        }
        self.metrics.shard_contention.inc();
        self.shards[idx].pages.lock()
    }

    /// The canonical segment store (shared with co-located services such
    /// as the 2PC participant).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }

    /// The append-only log backing this server's durability. Co-located
    /// services with durable state of their own (the 2PC participant's
    /// intent records, the outcome registry) append through this handle
    /// so one replay reconstructs everything the node promised to keep.
    pub fn log(&self) -> &Arc<LogStore> {
        &self.log
    }

    /// The node this server runs on.
    pub fn node_id(&self) -> NodeId {
        self.ratp.node_id()
    }

    /// Snapshot of protocol counters (the read shim over the node's
    /// metrics registry).
    pub fn stats(&self) -> DsmServerStats {
        DsmServerStats {
            read_grants: self.metrics.read_grants.get(),
            write_grants: self.metrics.write_grants.get(),
            invalidations: self.metrics.invalidations.get(),
            downgrades: self.metrics.downgrades.get(),
            write_backs: self.metrics.write_backs.get(),
            ack_timeouts: self.metrics.ack_timeouts.get(),
            fetch_rpcs: self.metrics.fetch_rpcs.get(),
            batch_fetches: self.metrics.batch_fetches.get(),
            prefetch_pages_granted: self.metrics.prefetch_pages_granted.get(),
            batch_write_backs: self.metrics.batch_write_backs.get(),
            mirror_writes: self.metrics.mirror_writes.get(),
            mirror_applies: self.metrics.mirror_applies.get(),
            promotions: self.metrics.promotions.get(),
            shard_contention: self.metrics.shard_contention.get(),
        }
    }

    /// Grants served per directory stripe, in stripe order (length =
    /// stripe count). A healthy page hash spreads a multi-segment
    /// workload across most stripes.
    pub fn shard_grant_counts(&self) -> Vec<u64> {
        self.metrics.shard_grants.iter().map(|c| c.get()).collect()
    }

    /// This node's observability handle (registry + trace sink).
    pub fn obs(&self) -> &Arc<NodeObs> {
        &self.obs
    }

    /// Coherently install a page image: recalls every cached copy at
    /// other nodes, then writes the data to the canonical store. Used by
    /// the two-phase-commit participant to make committed cp-thread
    /// updates visible with one-copy semantics.
    ///
    /// # Errors
    ///
    /// Propagates store errors (unknown segment, bad page).
    pub fn commit_page(&self, seg: SysName, page: u32, data: &[u8]) -> clouds_ra::Result<u64> {
        let key = (seg, page);
        let state = self.begin_transition(key);
        let result = (|| {
            match &state {
                Coherence::Exclusive(owner) => {
                    // Any dirty data at the owner loses to the committed
                    // image: the commit holds the write lock, so a correct
                    // cp/s-thread mix cannot produce a competing dirty copy.
                    self.recall(*owner, RecallRequest::Reclaim { seg, page })?;
                    self.metrics.invalidations.inc();
                }
                Coherence::Shared(set) => {
                    for &holder in set {
                        self.recall(holder, RecallRequest::Reclaim { seg, page })?;
                        self.metrics.invalidations.inc();
                    }
                }
                Coherence::Idle => {}
            }
            let segment = self.store.get(seg)?;
            let version = segment.write().write_page(page, data)?;
            self.metrics.write_backs.inc();
            // Log before mirroring: the committed image must be on this
            // node's own media before any ack can escape.
            self.log.append(LogRecord::PageWrite {
                seg,
                page,
                version,
                data: data.to_vec(),
            });
            // The commit is not acknowledged until every backup holds the
            // committed image: a post-commit failover must serve it.
            self.mirror_page(seg, page, &PageBytes::copy_from_slice(data), version)?;
            Ok(version)
        })();
        // On an aborted recall, keep the pre-transition copyset: copies
        // that did answer are gone from their caches, but re-recalling a
        // non-holder is harmless, while forgetting a live one is not.
        self.end_transition(
            key,
            if result.is_ok() { Coherence::Idle } else { state },
        );
        result
    }

    /// Forget all coherence state (the directory is volatile). Stripes
    /// are visited in ascending index order, one guard at a time.
    pub fn clear_directory(&self) {
        for idx in 0..self.shards.len() {
            self.shards[idx].pages.lock().clear();
            self.shards[idx].busy_cvar.notify_all();
        }
    }

    /// The crash wiping this data server's DRAM: every cached segment
    /// image, the replica view, and the mirror version gates are
    /// dropped, and the log's own volatile index goes with them
    /// ([`LogStore::crash`]). Only the log media survives;
    /// [`DsmServer::recover_from_log`] rebuilds the rest. The coherence
    /// directory is cleared separately ([`DsmServer::clear_directory`]).
    /// Stripes are visited in ascending index order, one guard at a
    /// time.
    pub fn wipe_store(&self) {
        self.needs_replay.store(true, Ordering::SeqCst);
        self.store.clear();
        self.replicas.write().clear();
        for idx in 0..self.mirror_shards.len() {
            self.mirror_shards[idx].versions.lock().clear();
        }
        self.log.crash();
    }

    /// The store was wiped ([`DsmServer::wipe_store`]) and the log has
    /// not been replayed yet: the volatile maps are empty placeholders,
    /// not valid state, and the recovery fence must not lift until
    /// [`DsmServer::recover_from_log`] runs.
    pub fn needs_replay(&self) -> bool {
        self.needs_replay.load(Ordering::SeqCst)
    }

    /// Rebuild the segment cache, replica view and mirror version gates
    /// from the log alone, charging this node's virtual clock the
    /// sequential scan cost ([`replay_cost`]) and recording it in the
    /// `store.replay` histogram. Returns the full [`ReplayOutcome`] so
    /// co-located services (the 2PC participant, the outcome registry)
    /// can resume their own durable state from the same pass.
    pub fn recover_from_log(&self) -> ReplayOutcome {
        let out = self.log.replay();
        let cost = replay_cost(out.bytes, out.log_segments);
        self.obs.clock().charge(cost);
        self.metrics.replay.record(cost);
        for (seg, rs) in &out.state.segments {
            // A double recovery finding the segment in place is fine:
            // restore_page is idempotent per (page, version).
            let _ = self.store.create(*seg, rs.len);
            if let Ok(segment) = self.store.get(*seg) {
                let mut guard = segment.write();
                // `ReplaySegment::pages` is a BTreeMap: deterministic order.
                for (page, (version, data)) in &rs.pages { // lint:allow(hash-iter)
                    let _ = guard.restore_page(*page, data, *version);
                }
            }
        }
        {
            let mut reps = self.replicas.write();
            for (seg, config) in &out.state.replicas {
                reps.insert(
                    *seg,
                    ReplicaState {
                        members: config.members.iter().map(|&n| NodeId(n)).collect(),
                        epoch: config.epoch,
                    },
                );
            }
        }
        // Mirror version gates resume at the logged page versions so a
        // re-pushed (duplicate) mirror write from before the crash is
        // still recognized as a duplicate.
        for (seg, rs) in &out.state.segments {
            if out.state.replicas.contains_key(seg) {
                // `ReplaySegment::pages` is a BTreeMap: deterministic order.
                for (page, (version, _)) in &rs.pages { // lint:allow(hash-iter)
                    let idx = self.shard_index((*seg, *page));
                    self.mirror_shards[idx]
                        .versions
                        .lock()
                        .insert((*seg, *page), *version);
                }
            }
        }
        *self.recovered_txns.lock() = Some((
            out.state.pending_intents.clone(),
            out.state.outcomes.clone(),
        ));
        self.needs_replay.store(false, Ordering::SeqCst);
        self.obs.instant(
            "dsm.server",
            "log_replay",
            format!(
                "records={} bytes={} torn={} cost={cost}",
                out.records, out.bytes, out.torn_dropped
            ),
        );
        out
    }

    /// Take the pending 2PC intents and recorded commit outcomes
    /// reconstructed by the last [`DsmServer::recover_from_log`] pass.
    /// The co-located commit participant consumes these to re-stage
    /// undecided transactions and rebuild the outcome registry; `None`
    /// if no replay ran since the last take.
    pub fn take_recovered_txns(&self) -> Option<RecoveredTxns> {
        self.recovered_txns.lock().take()
    }

    // --- segment replication ---------------------------------------------

    /// Replicated segments are served only by their primary: a backup
    /// answers `SegmentNotFound`, exactly as if it did not hold the
    /// segment, so home discovery and failover retries naturally land on
    /// the current primary and never see two servers claiming one
    /// segment.
    fn check_serving(&self, seg: SysName) -> clouds_ra::Result<()> {
        match self.replicas.read().get(&seg) {
            Some(st)
                if st.members.first() != Some(&self.ratp.node_id())
                    || self.recovering.load(Ordering::SeqCst) =>
            {
                Err(RaError::SegmentNotFound(seg))
            }
            _ => Ok(()),
        }
    }

    /// Stop serving replicated segments until the replica view is
    /// resynced — part of the crash simulation: a rebooted ex-primary
    /// must learn of any demotion that happened while it was down
    /// *before* it answers home probes again, or two servers would claim
    /// the same segment. Mirror pushes and promotions still apply while
    /// recovering (they are how the view catches up).
    pub fn begin_recovery(&self) {
        self.recovering.store(true, Ordering::SeqCst);
    }

    /// Resume serving replicated segments; call after the replica views
    /// have been refreshed from the naming directory with
    /// [`DsmServer::adopt_replica_config`].
    pub fn finish_recovery(&self) {
        self.recovering.store(false, Ordering::SeqCst);
    }

    /// Still fenced between [`DsmServer::begin_recovery`] and
    /// [`DsmServer::finish_recovery`]? The failover monitor keeps
    /// retrying the directory resync while this holds.
    pub fn is_recovering(&self) -> bool {
        self.recovering.load(Ordering::SeqCst)
    }

    /// This server's view of `seg`'s replica set, if replicated:
    /// membership in promotion order (`[0]` = primary) and epoch.
    pub fn replica_view(&self, seg: SysName) -> Option<(Vec<NodeId>, u64)> {
        self.replicas
            .read()
            .get(&seg)
            .map(|st| (st.members.clone(), st.epoch))
    }

    /// Every replicated segment this server participates in, with its
    /// current membership view and epoch, in deterministic (sysname)
    /// order. The failover monitor sweeps this to find primaries to
    /// watch.
    pub fn replicated_segments(&self) -> Vec<(SysName, Vec<NodeId>, u64)> {
        self.replicas
            .read()
            .iter()
            .map(|(seg, st)| (*seg, st.members.clone(), st.epoch))
            .collect()
    }

    /// Overwrite the local replica view of `seg` if `epoch` is no older
    /// than the current one — used by a rebooting server to resync from
    /// the naming directory before it serves again (a restarted
    /// ex-primary must learn of its demotion *before* answering home
    /// probes, or two servers would claim the segment).
    pub fn adopt_replica_config(&self, seg: SysName, members: Vec<NodeId>, epoch: u64) {
        let mut reps = self.replicas.write();
        let adopted = match reps.get_mut(&seg) {
            Some(st) if epoch >= st.epoch => {
                st.members = members.clone();
                st.epoch = epoch;
                true
            }
            Some(_) => false,
            None => {
                reps.insert(seg, ReplicaState { members: members.clone(), epoch });
                true
            }
        };
        drop(reps);
        if adopted {
            self.log_replica_config(seg, &members, epoch);
        }
    }

    /// Append the durable record of a replica-view change; replay keeps
    /// the highest epoch, so logging adoptions unconditionally is safe.
    fn log_replica_config(&self, seg: SysName, members: &[NodeId], epoch: u64) {
        self.log.append(LogRecord::ReplicaConfig {
            seg,
            config: ReplicaRecord {
                members: members.iter().map(|n| n.0).collect(),
                epoch,
            },
        });
    }

    /// Assume the primary role for `seg` at `epoch`. Idempotent under
    /// duplicate promotion messages: only a strictly newer epoch changes
    /// anything (the directory applies the same fencing rule, so both
    /// converge). The demoted primary moves to the back of the
    /// promotion order; it rejoins as a backup when it restarts.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`] if this server holds no replica of
    /// `seg`.
    pub fn promote_segment(&self, seg: SysName, epoch: u64) -> clouds_ra::Result<()> {
        let me = self.ratp.node_id();
        let mut reps = self.replicas.write();
        let st = reps
            .get_mut(&seg)
            .ok_or(RaError::SegmentNotFound(seg))?;
        if epoch > st.epoch {
            if st.members.first() != Some(&me) {
                let old = st.members[0];
                st.members.retain(|&n| n != me && n != old);
                st.members.insert(0, me);
                st.members.push(old);
            }
            st.epoch = epoch;
            let members = st.members.clone();
            drop(reps);
            self.log_replica_config(seg, &members, epoch);
            self.metrics.promotions.inc();
            self.obs
                .instant("dsm.server", "promote", format!("seg={seg} epoch={epoch}"));
        }
        Ok(())
    }

    fn create_replicated(&self, seg: SysName, len: u64, members: &[u32]) -> DsmReply {
        let nodes: Vec<NodeId> = members.iter().map(|&n| NodeId(n)).collect();
        if nodes.first() != Some(&self.ratp.node_id()) {
            return DsmReply::Err(
                RaError::PartitionUnavailable(format!(
                    "CreateReplicated sent to {} but members[0] is {:?}",
                    self.ratp.node_id(),
                    nodes.first()
                ))
                .into(),
            );
        }
        if let Err(e) = self.store.create(seg, len) {
            return DsmReply::Err(e.into());
        }
        self.log.append(LogRecord::SegmentCreate { seg, len });
        self.replicas.write().insert(
            seg,
            ReplicaState {
                members: nodes.clone(),
                epoch: 1,
            },
        );
        self.log_replica_config(seg, &nodes, 1);
        for &backup in &nodes[1..] {
            let req = DsmRequest::MirrorCreate {
                seg,
                len,
                members: members.to_vec(),
                epoch: 1,
            };
            if let Err(e) = self.mirror_call(backup, &req) {
                return DsmReply::Err(e.into());
            }
        }
        DsmReply::Ok
    }

    fn apply_mirror_create(
        &self,
        src: NodeId,
        seg: SysName,
        len: u64,
        members: &[u32],
        epoch: u64,
    ) -> DsmReply {
        if let Err(e) = self.adopt_mirror_config(src, seg, members, epoch) {
            return DsmReply::Err(e.into());
        }
        match self.store.create(seg, len) {
            Ok(()) => {
                self.log.append(LogRecord::SegmentCreate { seg, len });
                DsmReply::Ok
            }
            // A retransmitted create finding the segment in place is the
            // duplicate case (already logged), not a conflict.
            Err(RaError::SegmentExists(_)) => DsmReply::Ok,
            Err(e) => DsmReply::Err(e.into()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_mirror_write(
        &self,
        src: NodeId,
        seg: SysName,
        page: u32,
        data: &[u8],
        version: u64,
        members: &[u32],
        epoch: u64,
    ) -> DsmReply {
        if let Err(e) = self.adopt_mirror_config(src, seg, members, epoch) {
            return DsmReply::Err(e.into());
        }
        // Apply under the page's version-stripe lock so a racing older
        // push can never overwrite a newer image (store application and
        // the version record move together). Same stripe function as the
        // directory, so per-page atomicity is preserved across stripes.
        let idx = self.shard_index((seg, page));
        let mut versions = self.mirror_shards[idx].versions.lock();
        let slot = versions.entry((seg, page)).or_insert(0);
        if version <= *slot {
            return DsmReply::Ok; // duplicate or already-superseded image
        }
        let segment = match self.store.get(seg) {
            Ok(s) => s,
            Err(e) => return DsmReply::Err(e.into()),
        };
        if let Err(e) = segment.write().write_page(page, data) {
            return DsmReply::Err(e.into());
        }
        *slot = version;
        // Log the *primary's* version, not the local counter: after a
        // replay the gate above must resume at the highest version this
        // backup ever applied.
        self.log.append(LogRecord::PageWrite {
            seg,
            page,
            version,
            data: data.to_vec(),
        });
        self.metrics.mirror_applies.inc();
        DsmReply::Ok
    }

    fn apply_mirror_destroy(&self, seg: SysName, epoch: u64) -> DsmReply {
        {
            let mut reps = self.replicas.write();
            match reps.get(&seg) {
                None => return DsmReply::Ok, // duplicate destroy
                Some(st) if epoch < st.epoch => {
                    return DsmReply::Err(
                        RaError::PartitionUnavailable(format!(
                            "stale mirror destroy epoch {epoch} < {}",
                            st.epoch
                        ))
                        .into(),
                    )
                }
                Some(_) => {}
            }
            reps.remove(&seg);
        }
        self.log.append(LogRecord::SegmentDestroy { seg });
        self.drop_mirror_versions(seg);
        match self.store.destroy(seg) {
            Ok(()) | Err(RaError::SegmentNotFound(_)) => DsmReply::Ok,
            Err(e) => DsmReply::Err(e.into()),
        }
    }

    /// Drop every mirror version record of `seg`, visiting the stripes
    /// in ascending index order (one guard at a time).
    fn drop_mirror_versions(&self, seg: SysName) {
        for idx in 0..self.mirror_shards.len() {
            self.mirror_shards[idx]
                .versions
                .lock()
                .retain(|(s, _), _| *s != seg);
        }
    }

    /// Accept (or refuse) a mirror push's configuration: the sender must
    /// be the primary of its own view, and its epoch must not be older
    /// than ours — a stale ex-primary that missed its demotion is fenced
    /// off here. An equal-or-newer view is adopted, which is how a
    /// restarted replica with stale membership catches up lazily.
    fn adopt_mirror_config(
        &self,
        src: NodeId,
        seg: SysName,
        members: &[u32],
        epoch: u64,
    ) -> clouds_ra::Result<()> {
        if members.first() != Some(&src.0) {
            return Err(RaError::PartitionUnavailable(format!(
                "mirror push from {} which is not the primary of its own view",
                src.0
            )));
        }
        let nodes: Vec<NodeId> = members.iter().map(|&n| NodeId(n)).collect();
        let mut reps = self.replicas.write();
        let changed = match reps.get_mut(&seg) {
            Some(st) => {
                if epoch < st.epoch {
                    return Err(RaError::PartitionUnavailable(format!(
                        "stale mirror epoch {epoch} < {} for {seg}",
                        st.epoch
                    )));
                }
                // Only log real view changes — this runs on every mirror
                // push, and the common case is an unchanged view.
                let changed = st.epoch != epoch || st.members != nodes;
                st.members = nodes.clone();
                st.epoch = epoch;
                changed
            }
            None => {
                reps.insert(
                    seg,
                    ReplicaState {
                        members: nodes.clone(),
                        epoch,
                    },
                );
                true
            }
        };
        drop(reps);
        if changed {
            self.log_replica_config(seg, &nodes, epoch);
        }
        Ok(())
    }

    /// Push one durable page image to every backup, blocking until all
    /// confirm. Called *after* the local store write and *before* the
    /// client's acknowledgement, so a confirmed write exists on every
    /// replica — the mirror quorum here is the full backup set, trading
    /// write availability during a backup's crash window for zero lost
    /// write-backs across promotion.
    ///
    /// The payload is a [`PageBytes`]: each per-backup request clones it
    /// by refcount, so an N-backup push serializes the page N times but
    /// never re-copies it into the request values.
    ///
    /// No-op for unreplicated segments and on backups.
    fn mirror_page(
        &self,
        seg: SysName,
        page: u32,
        data: &PageBytes,
        version: u64,
    ) -> clouds_ra::Result<()> {
        let Some((members, epoch)) = self.primary_view(seg) else {
            return Ok(());
        };
        let wire_members: Vec<u32> = members.iter().map(|n| n.0).collect();
        for &backup in &members[1..] {
            self.metrics.mirror_writes.inc();
            let req = DsmRequest::MirrorWrite {
                seg,
                page,
                data: data.clone(),
                version,
                members: wire_members.clone(),
                epoch,
            };
            self.mirror_call(backup, &req)?;
        }
        Ok(())
    }

    /// Propagate a destroy to every backup. Local replica bookkeeping is
    /// the *caller's* to clean up, and only after its own store drop
    /// succeeds — keeping the entry (and the segment) until every backup
    /// confirmed makes a partially failed destroy retriable.
    fn mirror_destroy(&self, seg: SysName) -> clouds_ra::Result<()> {
        let Some((members, epoch)) = self.primary_view(seg) else {
            return Ok(());
        };
        for &backup in &members[1..] {
            self.mirror_call(backup, &DsmRequest::MirrorDestroy { seg, epoch })?;
        }
        Ok(())
    }

    /// The membership and epoch of `seg` if this server is its primary.
    fn primary_view(&self, seg: SysName) -> Option<(Vec<NodeId>, u64)> {
        let reps = self.replicas.read();
        let st = reps.get(&seg)?;
        (st.members.first() == Some(&self.ratp.node_id()))
            .then(|| (st.members.clone(), st.epoch))
    }

    /// One mirror RPC with the patient budget. A backup that cannot be
    /// reached maps to [`RaError::ReplicaUnavailable`] — the home itself
    /// is fine, so the client must not burn failover attempts
    /// re-resolving it. A backup that *answers* with an error (e.g. the
    /// epoch fence rejecting a demoted ex-primary's push) passes the
    /// error through unchanged, so the fencing `PartitionUnavailable`
    /// still drives the client's home re-resolution.
    fn mirror_call(&self, backup: NodeId, req: &DsmRequest) -> clouds_ra::Result<()> {
        match self.ratp.call_with_budget(
            backup,
            ports::DSM_SERVER,
            proto::encode(req),
            MIRROR_RETRIES,
        ) {
            Ok(reply) => match proto::decode::<DsmReply>(&reply)? {
                DsmReply::Ok => Ok(()),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(RaError::ReplicaUnavailable(format!(
                    "unexpected mirror reply {other:?}"
                ))),
            },
            Err(e) => Err(RaError::ReplicaUnavailable(format!(
                "mirror to {} failed: {e}",
                backup.0
            ))),
        }
    }

    fn handle(&self, src: NodeId, req: DsmRequest) -> DsmReply {
        match req {
            DsmRequest::CreateSegment { seg, len } => match self.store.create(seg, len) {
                Ok(()) => {
                    self.log.append(LogRecord::SegmentCreate { seg, len });
                    DsmReply::Ok
                }
                Err(e) => DsmReply::Err(e.into()),
            },
            DsmRequest::DestroySegment { seg } => {
                if let Err(e) = self.check_serving(seg) {
                    return DsmReply::Err(e.into());
                }
                // Backups drop their copies *first*: if one is down past
                // the mirror budget, the primary still holds the segment
                // and its replica entry, so the client's retry re-drives
                // the whole destroy instead of finding it half-applied
                // (apply_mirror_destroy is idempotent — backups that
                // already destroyed simply re-ack).
                if let Err(e) = self.mirror_destroy(seg) {
                    return DsmReply::Err(e.into());
                }
                match self.store.destroy(seg) {
                    Ok(()) => {
                        self.log.append(LogRecord::SegmentDestroy { seg });
                        for idx in 0..self.shards.len() {
                            // lint:allow(hash-iter) — retain drops entries
                            // independently; visit order cannot be observed.
                            self.shards[idx].pages.lock().retain(|(s, _), _| *s != seg);
                        }
                        self.replicas.write().remove(&seg);
                        self.drop_mirror_versions(seg);
                        DsmReply::Ok
                    }
                    Err(e) => DsmReply::Err(e.into()),
                }
            }
            DsmRequest::SegmentLen { seg } => {
                if let Err(e) = self.check_serving(seg) {
                    return DsmReply::Err(e.into());
                }
                match self.store.get(seg) {
                    Ok(s) => DsmReply::Len(s.read().len()),
                    Err(e) => DsmReply::Err(e.into()),
                }
            }
            DsmRequest::FetchPage { seg, page, mode } => {
                if let Err(e) = self.check_serving(seg) {
                    return DsmReply::Err(e.into());
                }
                self.metrics.fetch_rpcs.inc();
                self.fetch(src, seg, page, mode)
            }
            DsmRequest::FetchPages {
                seg,
                first,
                count,
                mode,
            } => {
                if let Err(e) = self.check_serving(seg) {
                    return DsmReply::Err(e.into());
                }
                self.metrics.fetch_rpcs.inc();
                self.metrics.batch_fetches.inc();
                self.fetch_pages(src, seg, first, count, mode)
            }
            DsmRequest::WriteBack {
                seg,
                page,
                data,
                release,
            } => {
                if let Err(e) = self.check_serving(seg) {
                    return DsmReply::Err(e.into());
                }
                self.write_back(src, seg, page, &data, release)
            }
            DsmRequest::WriteBackBatch { pages } => self.write_back_batch(&pages),
            DsmRequest::ReleasePage { seg, page } => {
                self.forget_copy(src, seg, page);
                DsmReply::Ok
            }
            DsmRequest::InstallAck {
                seg,
                page,
                grant_seq,
            } => {
                self.handle_install_ack(src, seg, page, grant_seq);
                DsmReply::Ok
            }
            DsmRequest::InstallAckBatch { seg, acks } => {
                for ack in acks {
                    let matched = self.handle_install_ack(src, seg, ack.page, ack.grant_seq);
                    // The client declined the speculative copy: drop it
                    // from the copyset so no recall ever waits on a copy
                    // that does not exist. Only while this very grant's
                    // ack was still pending, though — if the deadline
                    // already fired, a newer transition may have granted
                    // the page to the same client for real, and
                    // forgetting now would orphan that live copy.
                    if !ack.installed && matched {
                        self.forget_copy(src, seg, ack.page);
                    }
                }
                DsmReply::Ok
            }
            DsmRequest::CreateReplicated { seg, len, members } => {
                self.create_replicated(seg, len, &members)
            }
            DsmRequest::MirrorCreate {
                seg,
                len,
                members,
                epoch,
            } => self.apply_mirror_create(src, seg, len, &members, epoch),
            DsmRequest::MirrorWrite {
                seg,
                page,
                data,
                version,
                members,
                epoch,
            } => self.apply_mirror_write(src, seg, page, data.as_slice(), version, &members, epoch),
            DsmRequest::MirrorDestroy { seg, epoch } => self.apply_mirror_destroy(seg, epoch),
            DsmRequest::PromoteSegment { seg, epoch } => match self.promote_segment(seg, epoch) {
                Ok(()) => DsmReply::Ok,
                Err(e) => DsmReply::Err(e.into()),
            },
        }
    }

    /// Serialize coherence transitions per page: acquire the busy flag,
    /// also waiting out any unacknowledged previous grant (otherwise a
    /// recall could reach the grantee before the granted frame is
    /// installed and wrongly conclude the copy does not exist). Only the
    /// page's own stripe is locked.
    fn begin_transition(&self, key: (SysName, u32)) -> Coherence {
        let idx = self.shard_index(key);
        let mut pages = self.lock_shard(idx);
        loop {
            let entry = pages.entry(key).or_insert(PageEntry {
                state: Coherence::Idle,
                busy: false,
                awaiting_ack: None,
            });
            if !entry.busy {
                match entry.awaiting_ack {
                    None => {
                        entry.busy = true;
                        return entry.state.clone();
                    }
                    Some((_, _, deadline)) if Instant::now() >= deadline => {
                        // Grantee never confirmed: assume it crashed with
                        // the grant in flight; its copy is gone.
                        self.metrics.ack_timeouts.inc();
                        entry.awaiting_ack = None;
                        entry.busy = true;
                        return entry.state.clone();
                    }
                    Some((_, _, deadline)) => {
                        let _ = self.shards[idx].busy_cvar.wait_until(&mut pages, deadline);
                        continue;
                    }
                }
            }
            self.shards[idx].busy_cvar.wait(&mut pages);
        }
    }

    fn end_transition(&self, key: (SysName, u32), new_state: Coherence) {
        let idx = self.shard_index(key);
        {
            let mut pages = self.lock_shard(idx);
            if let Some(entry) = pages.get_mut(&key) {
                // A voluntary release/write-back may have mutated the state
                // while we were recalling; the transition's outcome wins,
                // because recalls observed (or outwaited) those copies.
                entry.state = new_state;
                entry.busy = false;
            }
        }
        self.shards[idx].busy_cvar.notify_all();
    }

    /// Finish a transition that granted a page to `grantee`: the next
    /// transition for this page must wait for the install ack.
    fn end_transition_granted(
        &self,
        key: (SysName, u32),
        new_state: Coherence,
        grantee: NodeId,
        grant_seq: u64,
    ) {
        let idx = self.shard_index(key);
        {
            let mut pages = self.lock_shard(idx);
            if let Some(entry) = pages.get_mut(&key) {
                entry.state = new_state;
                entry.busy = false;
                entry.awaiting_ack = Some((grantee, grant_seq, Instant::now() + ACK_DEADLINE));
            }
        }
        self.shards[idx].busy_cvar.notify_all();
    }

    /// Returns whether the ack matched the grant still awaiting one (a
    /// stale or duplicate ack leaves the directory untouched).
    fn handle_install_ack(&self, src: NodeId, seg: SysName, page: u32, grant_seq: u64) -> bool {
        let idx = self.shard_index((seg, page));
        let mut matched = false;
        {
            let mut pages = self.lock_shard(idx);
            if let Some(entry) = pages.get_mut(&(seg, page)) {
                if let Some((node, seq, _)) = entry.awaiting_ack {
                    if node == src && seq == grant_seq {
                        entry.awaiting_ack = None;
                        matched = true;
                    }
                }
            }
        }
        self.shards[idx].busy_cvar.notify_all();
        matched
    }

    fn fetch(&self, src: NodeId, seg: SysName, page: u32, mode: WireMode) -> DsmReply {
        // Validate before touching coherence state.
        if let Err(e) = self.store.get(seg) {
            return DsmReply::Err(e.into());
        }
        // Serving runs on the RaTP handler thread, which installed the
        // caller's wire context — the span parents across the node hop.
        let detail = format!("src={} seg={seg} page={page} mode={mode:?}", src.0);
        let mut span = self.obs.traced_span("dsm.server", "serve_fetch", &detail);
        span.set_args(detail);
        let key = (seg, page);
        let state = self.begin_transition(key);

        let new_state = match (mode, state) {
            (WireMode::Read, Coherence::Exclusive(owner)) if owner != src => {
                match self.recall(owner, RecallRequest::Downgrade { seg, page }) {
                    Ok(RecallReply::Dirty(data)) => {
                        self.apply_write_back(seg, page, &data);
                        self.metrics.downgrades.inc();
                        Coherence::Shared(HashSet::from([owner, src]))
                    }
                    Ok(RecallReply::Clean) => {
                        self.metrics.downgrades.inc();
                        Coherence::Shared(HashSet::from([owner, src]))
                    }
                    Ok(RecallReply::NotPresent) => Coherence::Shared(HashSet::from([src])),
                    Err(e) => {
                        self.end_transition(key, Coherence::Exclusive(owner));
                        return DsmReply::Err(e.into());
                    }
                }
            }
            (WireMode::Read, Coherence::Exclusive(_owner)) => {
                // Re-fetch by the owner itself (e.g. after dropping its
                // frame); demote to shared.
                Coherence::Shared(HashSet::from([src]))
            }
            (WireMode::Read, Coherence::Shared(mut set)) => {
                set.insert(src);
                Coherence::Shared(set)
            }
            (WireMode::Read, Coherence::Idle) => Coherence::Shared(HashSet::from([src])),
            (WireMode::Write, Coherence::Exclusive(owner)) if owner != src => {
                match self.recall(owner, RecallRequest::Reclaim { seg, page }) {
                    Ok(RecallReply::Dirty(data)) => {
                        self.apply_write_back(seg, page, &data);
                        self.metrics.invalidations.inc();
                    }
                    Ok(RecallReply::Clean) => {
                        self.metrics.invalidations.inc();
                    }
                    Ok(RecallReply::NotPresent) => {}
                    Err(e) => {
                        self.end_transition(key, Coherence::Exclusive(owner));
                        return DsmReply::Err(e.into());
                    }
                }
                Coherence::Exclusive(src)
            }
            (WireMode::Write, Coherence::Exclusive(_owner)) => Coherence::Exclusive(src),
            (WireMode::Write, Coherence::Shared(set)) => {
                for &holder in &set {
                    if holder == src {
                        continue;
                    }
                    match self.recall(holder, RecallRequest::Reclaim { seg, page }) {
                        Ok(RecallReply::Dirty(data)) => {
                            // Shared copies are clean by protocol, but be
                            // liberal in what we accept.
                            self.apply_write_back(seg, page, &data);
                            self.metrics.invalidations.inc();
                        }
                        Ok(RecallReply::Clean) => {
                            self.metrics.invalidations.inc();
                        }
                        Ok(RecallReply::NotPresent) => {}
                        Err(e) => {
                            // Holders already recalled are kept in the
                            // restored copyset; re-recalling a non-holder
                            // is harmless, forgetting a live one is not.
                            self.end_transition(key, Coherence::Shared(set));
                            return DsmReply::Err(e.into());
                        }
                    }
                }
                Coherence::Exclusive(src)
            }
            (WireMode::Write, Coherence::Idle) => Coherence::Exclusive(src),
        };

        let grant_seq = self.grant_seq.fetch_add(1, Ordering::Relaxed);
        let grant = match self.read_canonical(seg, page, grant_seq) {
            Ok(grant) => {
                match mode {
                    WireMode::Read => self.metrics.read_grants.inc(),
                    WireMode::Write => self.metrics.write_grants.inc(),
                };
                self.metrics.shard_grants[self.shard_index(key)].inc();
                grant
            }
            Err(e) => {
                self.end_transition(key, Coherence::Idle);
                return DsmReply::Err(e.into());
            }
        };
        self.end_transition_granted(key, new_state, src, grant_seq);
        DsmReply::Page {
            data: grant.data,
            version: grant.version,
            zero_filled: grant.zero_filled,
            grant_seq: grant.grant_seq,
        }
    }

    /// Serve a batch fetch: the faulting page takes the full coherence
    /// transition (recalls and all); the following contiguous pages are
    /// granted speculatively in read mode, exactly as far as coherence
    /// allows *without recalling anything* — the run stops at the first
    /// page that is exclusively held, mid-transition, or out of range.
    /// Every granted page carries its own grant_seq and must be
    /// acknowledged (see [`DsmRequest::InstallAckBatch`]).
    fn fetch_pages(
        &self,
        src: NodeId,
        seg: SysName,
        first: u32,
        count: u32,
        mode: WireMode,
    ) -> DsmReply {
        let head = match self.fetch(src, seg, first, mode) {
            DsmReply::Page {
                data,
                version,
                zero_filled,
                grant_seq,
            } => WirePageGrant {
                data,
                version,
                zero_filled,
                grant_seq,
            },
            other => return other,
        };
        let mut pages = vec![head];
        while pages.len() < count as usize {
            let Some(page) = first.checked_add(pages.len() as u32) else {
                break;
            };
            match self.try_speculative_grant(src, seg, page) {
                Some(grant) => pages.push(grant),
                None => break,
            }
        }
        self.metrics
            .prefetch_pages_granted
            .add(pages.len() as u64 - 1);
        DsmReply::Pages { first, pages }
    }

    /// Grant `page` to `src` in read mode only if no recall, wait, or
    /// demotion would be needed: the page must be Idle or Shared, with no
    /// transition running and no grant awaiting its ack. Returns `None`
    /// to end the read-ahead run otherwise.
    fn try_speculative_grant(
        &self,
        src: NodeId,
        seg: SysName,
        page: u32,
    ) -> Option<WirePageGrant> {
        let key = (seg, page);
        let idx = self.shard_index(key);
        let prior = {
            let mut pages = self.lock_shard(idx);
            let entry = pages.entry(key).or_insert(PageEntry {
                state: Coherence::Idle,
                busy: false,
                awaiting_ack: None,
            });
            if entry.busy || entry.awaiting_ack.is_some() {
                return None;
            }
            match &entry.state {
                // Never demote an exclusive copy speculatively: the owner
                // may hold dirty data a silent downgrade would lose.
                Coherence::Exclusive(_) => return None,
                // Never re-grant a page the requester already shares:
                // the client would decline the duplicate and its
                // uninstalled-ack would evict the *live* copy from the
                // copyset, leaving a cached page no recall can reach.
                Coherence::Shared(set) if set.contains(&src) => return None,
                Coherence::Idle | Coherence::Shared(_) => {}
            }
            entry.busy = true;
            entry.state.clone()
        };
        let grant_seq = self.grant_seq.fetch_add(1, Ordering::Relaxed);
        match self.read_canonical(seg, page, grant_seq) {
            Ok(grant) => {
                self.metrics.read_grants.inc();
                self.metrics.shard_grants[idx].inc();
                let new_state = match prior {
                    Coherence::Shared(mut set) => {
                        set.insert(src);
                        Coherence::Shared(set)
                    }
                    _ => Coherence::Shared(HashSet::from([src])),
                };
                self.end_transition_granted(key, new_state, src, grant_seq);
                Some(grant)
            }
            Err(_) => {
                // Out of range (end of segment) or store error: restore
                // the untouched state and end the run.
                self.end_transition(key, prior);
                None
            }
        }
    }

    fn read_canonical(
        &self,
        seg: SysName,
        page: u32,
        grant_seq: u64,
    ) -> Result<WirePageGrant, RaError> {
        let segment = self.store.get(seg)?;
        let segment = segment.read();
        let zero_filled = !segment.is_page_materialized(page);
        // The store hands out a fresh Vec; wrapping it as PageBytes is
        // allocation-free, and from here to the wire the image is only
        // refcounted, never copied again.
        let data = PageBytes::from(segment.read_page(page)?);
        Ok(WirePageGrant {
            data,
            version: segment.page_version(page),
            zero_filled,
            grant_seq,
        })
    }

    /// Ask `holder` to give up (or demote) its copy. A holder that stays
    /// silent through the whole retransmission budget is treated as
    /// crashed: its volatile copy died with it. A *local* transmit
    /// failure is different — this node's own interface is down (e.g.
    /// mid-crash in a fault schedule), which says nothing about the
    /// holder, so the transition must abort rather than forget a live
    /// copy and leak it stale.
    fn recall(&self, holder: NodeId, req: RecallRequest) -> clouds_ra::Result<RecallReply> {
        let (kind, seg, page) = match &req {
            RecallRequest::Downgrade { seg, page } => ("downgrade", *seg, *page),
            RecallRequest::Reclaim { seg, page } => ("reclaim", *seg, *page),
        };
        self.obs.instant(
            "dsm.server",
            "recall",
            format!("dst={} kind={kind} seg={seg} page={page}", holder.0),
        );
        match self.ratp.call_with_budget(
            holder,
            ports::DSM_CLIENT,
            proto::encode(&req),
            RECALL_RETRIES,
        ) {
            Ok(reply) => Ok(proto::decode_shared(&reply).unwrap_or(RecallReply::NotPresent)),
            Err(CallError::TimedOut | CallError::ServiceNotFound(_)) => {
                Ok(RecallReply::NotPresent)
            }
            Err(e) => Err(RaError::PartitionUnavailable(format!(
                "recall aborted, cannot transmit: {e}"
            ))),
        }
    }

    fn apply_write_back(&self, seg: SysName, page: u32, data: &PageBytes) {
        let Ok(segment) = self.store.get(seg) else {
            return;
        };
        // Write under the segment lock, then release it before the log
        // append and the mirror RPC — an `if let` scrutinee would keep
        // the write guard alive across the full mirror budget, stalling
        // every other access to the segment (same pattern as
        // `write_back`).
        let written = segment.write().write_page(page, data.as_slice());
        let Ok(version) = written else {
            return;
        };
        self.metrics.write_backs.inc();
        self.log.append(LogRecord::PageWrite {
            seg,
            page,
            version,
            data: data.to_vec(),
        });
        // Recalled dirty data was never acknowledged to its
        // writer, so a lost mirror here cannot violate the
        // committed-durable invariant — but push it with the
        // full patient budget anyway so replicas stay
        // byte-identical, and make the rare failure loud.
        if let Err(e) = self.mirror_page(seg, page, data, version) {
            self.obs.instant(
                "dsm.server",
                "mirror_recall_failed",
                format!("seg={seg} page={page}: {e}"),
            );
        }
    }

    /// Note: deliberately does *not* take the busy flag — see the module
    /// docs on deadlock freedom.
    fn write_back(
        &self,
        src: NodeId,
        seg: SysName,
        page: u32,
        data: &PageBytes,
        release: bool,
    ) -> DsmReply {
        let version = match self.store.get(seg) {
            Ok(segment) => match segment.write().write_page(page, data.as_slice()) {
                Ok(version) => {
                    self.metrics.write_backs.inc();
                    version
                }
                Err(e) => return DsmReply::Err(e.into()),
            },
            Err(e) => return DsmReply::Err(e.into()),
        };
        // Log before mirroring: the ack below promises durability, and
        // durability lives in the log, not the page cache.
        self.log.append(LogRecord::PageWrite {
            seg,
            page,
            version,
            data: data.to_vec(),
        });
        // Mirror before acknowledging: once the client sees Ok, every
        // replica must be able to serve this image after a failover.
        if let Err(e) = self.mirror_page(seg, page, data, version) {
            return DsmReply::Err(e.into());
        }
        if release {
            self.forget_copy(src, seg, page);
        }
        DsmReply::Ok
    }

    /// Apply a whole batch of write-backs in one RPC, returning one
    /// result per page (aligned with the request). Like
    /// [`DsmServer::write_back`], this deliberately does not take busy
    /// flags — see the module docs on deadlock freedom.
    fn write_back_batch(&self, pages: &[WireWriteBack]) -> DsmReply {
        self.metrics.batch_write_backs.inc();
        self.obs.instant(
            "dsm.server",
            "write_back_batch",
            format!("pages={}", pages.len()),
        );
        let results = pages
            .iter()
            .map(|p| {
                // Same per-segment fence as the single-page path: a
                // backup or demoted ex-primary must refuse the write
                // (mirror_page would silently no-op for it), so the
                // client re-resolves the home instead of collecting an
                // ack the real primary never saw.
                if let Err(e) = self.check_serving(p.seg) {
                    return Err(e.into());
                }
                let version = match self.store.get(p.seg) {
                    Ok(segment) => match segment.write().write_page(p.page, p.data.as_slice()) {
                        Ok(version) => {
                            self.metrics.write_backs.inc();
                            version
                        }
                        Err(e) => return Err(e.into()),
                    },
                    Err(e) => return Err(e.into()),
                };
                self.log.append(LogRecord::PageWrite {
                    seg: p.seg,
                    page: p.page,
                    version,
                    data: p.data.to_vec(),
                });
                // Per-page mirror before the per-page Ok: the batch reply
                // acknowledges exactly the pages every replica now holds.
                match self.mirror_page(p.seg, p.page, &p.data, version) {
                    Ok(()) => Ok(version),
                    Err(e) => Err(e.into()),
                }
            })
            .collect();
        DsmReply::WriteBackResults { results }
    }

    fn forget_copy(&self, src: NodeId, seg: SysName, page: u32) {
        let idx = self.shard_index((seg, page));
        let mut pages = self.lock_shard(idx);
        if let Some(entry) = pages.get_mut(&(seg, page)) {
            match &mut entry.state {
                Coherence::Exclusive(owner) if *owner == src => {
                    entry.state = Coherence::Idle;
                }
                Coherence::Shared(set) => {
                    set.remove(&src);
                    if set.is_empty() {
                        entry.state = Coherence::Idle;
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clouds_ratp::RatpConfig;
    use clouds_simnet::{CostModel, Network};

    fn server() -> (Network, Arc<DsmServer>, Arc<RatpNode>) {
        let net = Network::new(CostModel::zero());
        let ds = RatpNode::spawn(net.register(NodeId(10)).unwrap(), RatpConfig::default());
        let server = DsmServer::install(&ds);
        let client = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
        (net, server, client)
    }

    fn call(client: &Arc<RatpNode>, req: &DsmRequest) -> DsmReply {
        let reply = client
            .call(NodeId(10), ports::DSM_SERVER, proto::encode(req))
            .unwrap();
        proto::decode(&reply).unwrap()
    }

    #[test]
    fn create_len_destroy_over_the_wire() {
        let (_net, _server, client) = server();
        let seg = SysName::from_parts(1, 1);
        assert!(matches!(
            call(&client, &DsmRequest::CreateSegment { seg, len: 100 }),
            DsmReply::Ok
        ));
        assert!(matches!(
            call(&client, &DsmRequest::SegmentLen { seg }),
            DsmReply::Len(100)
        ));
        assert!(matches!(
            call(&client, &DsmRequest::CreateSegment { seg, len: 5 }),
            DsmReply::Err(crate::proto::WireError::SegmentExists(_))
        ));
        assert!(matches!(
            call(&client, &DsmRequest::DestroySegment { seg }),
            DsmReply::Ok
        ));
        assert!(matches!(
            call(&client, &DsmRequest::SegmentLen { seg }),
            DsmReply::Err(crate::proto::WireError::SegmentNotFound(_))
        ));
    }

    #[test]
    fn fetch_grants_and_counts() {
        let (_net, server, client) = server();
        let seg = SysName::from_parts(1, 2);
        call(
            &client,
            &DsmRequest::CreateSegment {
                seg,
                len: clouds_ra::PAGE_SIZE as u64,
            },
        );
        let reply = call(
            &client,
            &DsmRequest::FetchPage {
                seg,
                page: 0,
                mode: WireMode::Read,
            },
        );
        match reply {
            DsmReply::Page {
                data, zero_filled, ..
            } => {
                assert_eq!(data.len(), clouds_ra::PAGE_SIZE);
                assert!(zero_filled);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.stats().read_grants, 1);
        // Exactly one stripe served the grant.
        assert_eq!(server.shard_grant_counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn write_back_persists() {
        let (_net, server, client) = server();
        let seg = SysName::from_parts(1, 3);
        call(
            &client,
            &DsmRequest::CreateSegment {
                seg,
                len: clouds_ra::PAGE_SIZE as u64,
            },
        );
        let mut page = vec![0u8; clouds_ra::PAGE_SIZE];
        page[..5].copy_from_slice(b"hello");
        assert!(matches!(
            call(
                &client,
                &DsmRequest::WriteBack {
                    seg,
                    page: 0,
                    data: PageBytes::from(page),
                    release: true
                }
            ),
            DsmReply::Ok
        ));
        let stored = server.store().get(seg).unwrap().read().read(0, 5).unwrap();
        assert_eq!(&stored, b"hello");
        assert_eq!(server.stats().write_backs, 1);
    }

    #[test]
    fn fetch_of_unknown_segment_is_error() {
        let (_net, _server, client) = server();
        let reply = call(
            &client,
            &DsmRequest::FetchPage {
                seg: SysName::from_parts(9, 9),
                page: 0,
                mode: WireMode::Read,
            },
        );
        assert!(matches!(
            reply,
            DsmReply::Err(crate::proto::WireError::SegmentNotFound(_))
        ));
    }

    #[test]
    fn one_shard_server_behaves_like_the_coarse_directory() {
        // A stripe count of one is the old global-mutex directory; the
        // protocol must be oblivious to the stripe count.
        let net = Network::new(CostModel::zero());
        let ds = RatpNode::spawn(net.register(NodeId(10)).unwrap(), RatpConfig::default());
        let server = DsmServer::install_sharded(&ds, SegmentStore::new(), 1);
        let client = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
        let seg = SysName::from_parts(3, 3);
        call(
            &client,
            &DsmRequest::CreateSegment {
                seg,
                len: 4 * clouds_ra::PAGE_SIZE as u64,
            },
        );
        for page in 0..4 {
            assert!(matches!(
                call(
                    &client,
                    &DsmRequest::FetchPage {
                        seg,
                        page,
                        mode: WireMode::Write,
                    },
                ),
                DsmReply::Page { .. }
            ));
        }
        assert_eq!(server.stats().write_grants, 4);
        assert_eq!(server.shard_grant_counts(), vec![4]);
    }

    #[test]
    fn destroy_sweeps_every_stripe() {
        let (_net, server, client) = server();
        let seg = SysName::from_parts(4, 4);
        let keep = SysName::from_parts(4, 5);
        for s in [seg, keep] {
            call(
                &client,
                &DsmRequest::CreateSegment {
                    seg: s,
                    len: 32 * clouds_ra::PAGE_SIZE as u64,
                },
            );
            // Touch enough pages that both segments land entries on many
            // stripes.
            for page in 0..32 {
                call(
                    &client,
                    &DsmRequest::FetchPage {
                        seg: s,
                        page,
                        mode: WireMode::Read,
                    },
                );
            }
        }
        assert!(matches!(
            call(&client, &DsmRequest::DestroySegment { seg }),
            DsmReply::Ok
        ));
        let count_entries = |target: SysName| -> usize {
            server
                .shards
                .iter()
                .map(|sh| {
                    sh.pages
                        .lock()
                        .keys()
                        .filter(|(s, _)| *s == target)
                        .count()
                })
                .sum()
        };
        assert_eq!(
            count_entries(seg),
            0,
            "destroyed segment left directory entries behind"
        );
        assert_eq!(
            count_entries(keep),
            32,
            "destroy swept entries of an unrelated segment"
        );
    }

    #[test]
    fn write_back_batch_is_fenced_off_non_primaries() {
        let (_net, server, client) = server();
        let seg = SysName::from_parts(1, 5);
        call(
            &client,
            &DsmRequest::CreateSegment {
                seg,
                len: clouds_ra::PAGE_SIZE as u64,
            },
        );
        // This server is a *backup* in its replica view: batched
        // write-backs must be refused exactly like the single-page
        // path, or a client with a stale home cache would collect acks
        // for writes the real primary never saw.
        server.adopt_replica_config(seg, vec![NodeId(99), NodeId(10)], 1);
        let reply = call(
            &client,
            &DsmRequest::WriteBackBatch {
                pages: vec![WireWriteBack {
                    seg,
                    page: 0,
                    data: PageBytes::from(vec![1u8; clouds_ra::PAGE_SIZE]),
                }],
            },
        );
        match reply {
            DsmReply::WriteBackResults { results } => assert!(matches!(
                results[..],
                [Err(crate::proto::WireError::SegmentNotFound(_))]
            )),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(server.stats().write_backs, 0, "fenced write hit the store");
    }

    #[test]
    fn write_back_batch_is_fenced_while_recovering() {
        let (_net, server, client) = server();
        let seg = SysName::from_parts(1, 6);
        call(
            &client,
            &DsmRequest::CreateSegment {
                seg,
                len: clouds_ra::PAGE_SIZE as u64,
            },
        );
        // Sole member: this server is primary with no backups, so the
        // only fence that can trip is the recovery flag.
        server.adopt_replica_config(seg, vec![NodeId(10)], 1);
        server.begin_recovery();
        let req = DsmRequest::WriteBackBatch {
            pages: vec![WireWriteBack {
                seg,
                page: 0,
                data: PageBytes::from(vec![2u8; clouds_ra::PAGE_SIZE]),
            }],
        };
        match call(&client, &req) {
            DsmReply::WriteBackResults { results } => assert!(matches!(
                results[..],
                [Err(crate::proto::WireError::SegmentNotFound(_))]
            )),
            other => panic!("unexpected {other:?}"),
        }
        server.finish_recovery();
        match call(&client, &req) {
            DsmReply::WriteBackResults { results } => assert!(matches!(results[..], [Ok(_)])),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn failed_replicated_destroy_is_retriable_not_half_applied() {
        let net = Network::new(CostModel::zero());
        let fast = RatpConfig {
            retry_interval: std::time::Duration::from_millis(1),
            ..RatpConfig::default()
        };
        let primary_ratp = RatpNode::spawn(net.register(NodeId(10)).unwrap(), fast.clone());
        let primary = DsmServer::install(&primary_ratp);
        let backup_ratp = RatpNode::spawn(net.register(NodeId(11)).unwrap(), fast.clone());
        let backup = DsmServer::install(&backup_ratp);
        // The client outwaits the primary's whole mirror budget.
        let client = RatpNode::spawn(
            net.register(NodeId(1)).unwrap(),
            RatpConfig {
                max_retries: 10_000,
                ..fast
            },
        );
        let call = |req: &DsmRequest| -> DsmReply {
            let reply = client
                .call(NodeId(10), ports::DSM_SERVER, proto::encode(req))
                .unwrap();
            proto::decode(&reply).unwrap()
        };
        let seg = SysName::from_parts(1, 7);
        assert!(matches!(
            call(&DsmRequest::CreateReplicated {
                seg,
                len: 100,
                members: vec![10, 11],
            }),
            DsmReply::Ok
        ));

        // Backup down past the whole mirror budget: the destroy fails…
        net.crash(NodeId(11));
        assert!(matches!(
            call(&DsmRequest::DestroySegment { seg }),
            DsmReply::Err(crate::proto::WireError::ReplicaUnavailable(_))
        ));
        // …but nothing was half-applied: the primary still serves the
        // segment and still knows its replica set, so the client's
        // retry can re-drive the whole destroy.
        assert!(matches!(call(&DsmRequest::SegmentLen { seg }), DsmReply::Len(100)));
        assert!(primary.replica_view(seg).is_some());

        net.restart(NodeId(11));
        assert!(matches!(call(&DsmRequest::DestroySegment { seg }), DsmReply::Ok));
        assert!(matches!(
            call(&DsmRequest::SegmentLen { seg }),
            DsmReply::Err(crate::proto::WireError::SegmentNotFound(_))
        ));
        assert!(primary.replica_view(seg).is_none());
        assert!(backup.replica_view(seg).is_none());
        assert!(backup.store().get(seg).is_err());
    }

    #[test]
    fn out_of_range_page_is_error() {
        let (_net, _server, client) = server();
        let seg = SysName::from_parts(1, 4);
        call(&client, &DsmRequest::CreateSegment { seg, len: 10 });
        let reply = call(
            &client,
            &DsmRequest::FetchPage {
                seg,
                page: 5,
                mode: WireMode::Read,
            },
        );
        assert!(matches!(
            reply,
            DsmReply::Err(crate::proto::WireError::OutOfRange(_))
        ));
    }
}
