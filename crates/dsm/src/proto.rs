//! Wire protocol between DSM clients and data servers.

use clouds_codec::PageBytes;
use clouds_ra::RaError;
use clouds_ra::SysName;
use serde::{Deserialize, Serialize};

/// Well-known RaTP service ports used across the Clouds reproduction.
pub mod ports {
    /// DSM coherence service on data servers.
    pub const DSM_SERVER: u16 = 10;
    /// Recall/downgrade service on every DSM client (compute server).
    pub const DSM_CLIENT: u16 = 11;
    /// Segment-level lock manager on data servers.
    pub const LOCKS: u16 = 12;
    /// Distributed semaphore service on data servers.
    pub const SEMAPHORES: u16 = 13;
    /// Name server (see `clouds-naming`).
    pub const NAMING: u16 = 14;
    /// Object invocation service on compute servers (see `clouds`).
    pub const INVOCATION: u16 = 15;
    /// User I/O manager on workstations (see `clouds`).
    pub const USER_IO: u16 = 16;
    /// Two-phase-commit participant on data servers
    /// (see `clouds-consistency`).
    pub const COMMIT: u16 = 17;
}

/// Page access mode on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireMode {
    /// Shared, read-only copy.
    Read,
    /// Exclusive, writable ownership.
    Write,
}

/// Requests accepted by the data server's DSM service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DsmRequest {
    /// Create a segment of `len` zero bytes on this data server.
    CreateSegment {
        /// New segment's sysname.
        seg: SysName,
        /// Size in bytes.
        len: u64,
    },
    /// Destroy a segment.
    DestroySegment {
        /// Victim sysname.
        seg: SysName,
    },
    /// Query a segment's length (also used for home discovery).
    SegmentLen {
        /// Segment sysname.
        seg: SysName,
    },
    /// Demand-page one page in `mode`.
    FetchPage {
        /// Segment sysname.
        seg: SysName,
        /// Page index.
        page: u32,
        /// Requested coherence mode.
        mode: WireMode,
    },
    /// Demand-page `first` in `mode` plus up to `count - 1` contiguous
    /// read-ahead pages. The server performs the full coherence
    /// transition for `first` only; the extra pages are granted
    /// speculatively and exactly as far as coherence allows without
    /// recalling any copy (the grant stops at the first page that would
    /// need one).
    FetchPages {
        /// Segment sysname.
        seg: SysName,
        /// First (faulting) page index.
        first: u32,
        /// Total pages wanted, including `first` (>= 1).
        count: u32,
        /// Requested coherence mode for `first`; read-ahead pages are
        /// always granted in read mode.
        mode: WireMode,
    },
    /// Write a dirty page back; optionally drop ownership too.
    WriteBack {
        /// Segment sysname.
        seg: SysName,
        /// Page index.
        page: u32,
        /// Full page contents.
        data: PageBytes,
        /// Whether the client also relinquishes its copy.
        release: bool,
    },
    /// Drop a (clean) copy without data.
    ReleasePage {
        /// Segment sysname.
        seg: SysName,
        /// Page index.
        page: u32,
    },
    /// Write a batch of dirty pages back in one round trip. Frames stay
    /// owned by the client in their current mode (write-through, not
    /// release) — the commit-flush fast path.
    WriteBackBatch {
        /// The dirty pages, each with full contents.
        pages: Vec<WireWriteBack>,
    },
    /// Acknowledge that a granted page is installed at the client, so
    /// the manager may process the next transition for the page.
    InstallAck {
        /// Segment sysname.
        seg: SysName,
        /// Page index.
        page: u32,
        /// Grant sequence number being acknowledged.
        grant_seq: u64,
    },
    /// Acknowledge every page of a [`DsmRequest::FetchPages`] grant in
    /// one message. Pages the client declined to install (cache full,
    /// slot raced) carry `installed: false` so the manager both unblocks
    /// the grant and forgets the copy — no separate `ReleasePage` needed.
    InstallAckBatch {
        /// Segment sysname.
        seg: SysName,
        /// One entry per granted page.
        acks: Vec<WireInstallAck>,
    },
    /// Create a segment replicated across `members` (raw
    /// `clouds_simnet::NodeId` values, `members[0]` = this server, the
    /// primary). The primary
    /// creates locally, then pushes a [`DsmRequest::MirrorCreate`] to
    /// every backup before replying.
    CreateReplicated {
        /// New segment's sysname.
        seg: SysName,
        /// Size in bytes.
        len: u64,
        /// Full replica membership in promotion order; `members[0]` must
        /// be the receiving server.
        members: Vec<u32>,
    },
    /// Primary → backup: materialize a replicated segment's backing
    /// store and record its membership at `epoch`.
    MirrorCreate {
        /// New segment's sysname.
        seg: SysName,
        /// Size in bytes.
        len: u64,
        /// Full replica membership in promotion order.
        members: Vec<u32>,
        /// Replica-configuration epoch.
        epoch: u64,
    },
    /// Primary → backup: apply one durable page image. Carries the
    /// primary's membership view and epoch so a receiver with a stale
    /// view (a restarted ex-primary) adopts the newer configuration, and
    /// a *stale sender* (an ex-primary that missed its own demotion) is
    /// fenced off by the receiver's higher epoch.
    MirrorWrite {
        /// Segment sysname.
        seg: SysName,
        /// Page index.
        page: u32,
        /// Full page contents.
        data: PageBytes,
        /// The primary's canonical version for this page image. Backups
        /// apply strictly increasing versions only, so racing or
        /// duplicated mirror pushes converge on the newest image.
        version: u64,
        /// Sender's replica membership view, promotion order.
        members: Vec<u32>,
        /// Sender's replica-configuration epoch.
        epoch: u64,
    },
    /// Primary → backup: destroy a replicated segment's local copy.
    MirrorDestroy {
        /// Victim sysname.
        seg: SysName,
        /// Sender's replica-configuration epoch.
        epoch: u64,
    },
    /// Promote the receiving backup to primary for `seg` at `epoch`.
    /// Idempotent: applied only when `epoch` exceeds the receiver's
    /// current epoch for the segment, mirroring the directory's fencing
    /// rule, so duplicate promotions converge.
    PromoteSegment {
        /// The replicated segment.
        seg: SysName,
        /// Proposed epoch; must be greater than the current one to win.
        epoch: u64,
    },
}

/// One dirty page inside a [`DsmRequest::WriteBackBatch`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireWriteBack {
    /// Segment sysname.
    pub seg: SysName,
    /// Page index.
    pub page: u32,
    /// Full page contents.
    pub data: PageBytes,
}

/// One acknowledgement inside a [`DsmRequest::InstallAckBatch`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WireInstallAck {
    /// Page index.
    pub page: u32,
    /// Grant sequence number being acknowledged.
    pub grant_seq: u64,
    /// Whether the client actually kept the copy. `false` makes the
    /// server drop the client from the page's copyset.
    pub installed: bool,
}

/// Replies from the data server's DSM service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum DsmReply {
    /// Operation succeeded with no payload.
    Ok,
    /// Segment length.
    Len(u64),
    /// A page grant.
    Page {
        /// Full page contents.
        data: PageBytes,
        /// Canonical version counter.
        version: u64,
        /// Whether the page had never been written.
        zero_filled: bool,
        /// Grant sequence number to acknowledge after installing.
        grant_seq: u64,
    },
    /// A multi-page grant answering [`DsmRequest::FetchPages`]: the
    /// faulting page plus zero or more contiguous read-ahead pages, each
    /// with its own version and grant sequence number. Every granted
    /// page MUST be acknowledged via [`DsmRequest::InstallAckBatch`].
    Pages {
        /// First page index of the run (== the request's `first`).
        first: u32,
        /// The granted pages, contiguous from `first`.
        pages: Vec<WirePageGrant>,
    },
    /// One result per page of a [`DsmRequest::WriteBackBatch`], aligned
    /// with the request order. `Ok(version)` per page on success.
    WriteBackResults {
        /// Per-page outcome (new canonical version or error).
        results: Vec<Result<u64, WireError>>,
    },
    /// Operation failed.
    Err(WireError),
}

/// One granted page inside a [`DsmReply::Pages`] batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WirePageGrant {
    /// Full page contents.
    pub data: PageBytes,
    /// Canonical version counter.
    pub version: u64,
    /// Whether the page had never been written.
    pub zero_filled: bool,
    /// Grant sequence number to acknowledge after installing.
    pub grant_seq: u64,
}

/// Requests sent *by the data server* to a client's recall service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RecallRequest {
    /// Invalidate the client's copy entirely.
    Reclaim {
        /// Segment sysname.
        seg: SysName,
        /// Page index.
        page: u32,
    },
    /// Demote the client's exclusive copy to shared.
    Downgrade {
        /// Segment sysname.
        seg: SysName,
        /// Page index.
        page: u32,
    },
}

/// Replies from a client's recall service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RecallReply {
    /// The client no longer holds the page.
    NotPresent,
    /// The copy was clean; it has been dropped/demoted.
    Clean,
    /// The copy was dirty; here is the latest data.
    Dirty(PageBytes),
}

/// Serializable projection of [`RaError`] for the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireError {
    /// See [`RaError::SegmentNotFound`].
    SegmentNotFound(SysName),
    /// See [`RaError::SegmentExists`].
    SegmentExists(SysName),
    /// See [`RaError::OutOfRange`].
    OutOfRange(SysName),
    /// Any other failure, described as text.
    Other(String),
    /// See [`RaError::ReplicaUnavailable`]. Carried distinctly so a
    /// client can tell "home unreachable" (re-resolve the home) from
    /// "home reachable but a backup is down" (re-resolution cannot
    /// help; surface promptly).
    ReplicaUnavailable(String),
}

impl From<RaError> for WireError {
    fn from(e: RaError) -> WireError {
        match e {
            RaError::SegmentNotFound(s) => WireError::SegmentNotFound(s),
            RaError::SegmentExists(s) => WireError::SegmentExists(s),
            RaError::OutOfRange { segment, .. } => WireError::OutOfRange(segment),
            RaError::ReplicaUnavailable(m) => WireError::ReplicaUnavailable(m),
            other => WireError::Other(other.to_string()),
        }
    }
}

impl From<WireError> for RaError {
    fn from(e: WireError) -> RaError {
        match e {
            WireError::SegmentNotFound(s) => RaError::SegmentNotFound(s),
            WireError::SegmentExists(s) => RaError::SegmentExists(s),
            WireError::OutOfRange(segment) => RaError::OutOfRange {
                segment,
                offset: 0,
                len: 0,
                segment_len: 0,
            },
            WireError::Other(m) => RaError::PartitionUnavailable(m),
            WireError::ReplicaUnavailable(m) => RaError::ReplicaUnavailable(m),
        }
    }
}

/// Encode any serializable message for transmission.
///
/// # Panics
///
/// Panics only if the value cannot be encoded, which is impossible for
/// the closed set of protocol types in this module.
pub fn encode<T: Serialize>(value: &T) -> bytes::Bytes {
    bytes::Bytes::from(clouds_codec::to_bytes(value).expect("protocol types always encode"))
}

/// Decode a protocol message, mapping malformed input to an error reply.
///
/// # Errors
///
/// Returns `RaError::PartitionUnavailable` describing the decode failure.
pub fn decode<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, RaError> {
    clouds_codec::from_bytes(bytes)
        .map_err(|e| RaError::PartitionUnavailable(format!("malformed protocol message: {e}")))
}

/// Decode a protocol message whose [`PageBytes`] payloads should share
/// the (refcounted) message buffer instead of being copied out — the
/// zero-copy path for reassembled RaTP requests and replies.
///
/// # Errors
///
/// As for [`decode`].
pub fn decode_shared<T: serde::de::DeserializeOwned>(bytes: &bytes::Bytes) -> Result<T, RaError> {
    clouds_codec::from_bytes_shared(bytes)
        .map_err(|e| RaError::PartitionUnavailable(format!("malformed protocol message: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = DsmRequest::FetchPage {
            seg: SysName::from_parts(1, 2),
            page: 7,
            mode: WireMode::Write,
        };
        let bytes = encode(&req);
        let back: DsmRequest = decode(&bytes).unwrap();
        match back {
            DsmRequest::FetchPage { seg, page, mode } => {
                assert_eq!(seg, SysName::from_parts(1, 2));
                assert_eq!(page, 7);
                assert_eq!(mode, WireMode::Write);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn replica_unavailable_survives_the_wire() {
        // A mirror failure must reach the client as ReplicaUnavailable,
        // not be flattened into PartitionUnavailable — the client's
        // failover loop re-resolves the latter up to 10 times, each
        // paying the full mirror patience against an outage that
        // re-resolution cannot fix.
        let e = RaError::ReplicaUnavailable("backup 11 down".into());
        let wire: WireError = e.clone().into();
        let back: RaError = decode::<WireError>(&encode(&wire)).unwrap().into();
        assert_eq!(back, e);
    }

    #[test]
    fn reply_with_page_roundtrip() {
        let reply = DsmReply::Page {
            data: PageBytes::from(vec![1, 2, 3]),
            version: 9,
            zero_filled: false,
            grant_seq: 4,
        };
        let back: DsmReply = decode(&encode(&reply)).unwrap();
        assert!(matches!(back, DsmReply::Page { version: 9, .. }));
    }

    #[test]
    fn batch_fetch_roundtrip() {
        let req = DsmRequest::FetchPages {
            seg: SysName::from_parts(1, 2),
            first: 10,
            count: 8,
            mode: WireMode::Read,
        };
        let back: DsmRequest = decode(&encode(&req)).unwrap();
        assert!(matches!(
            back,
            DsmRequest::FetchPages {
                first: 10,
                count: 8,
                ..
            }
        ));

        let reply = DsmReply::Pages {
            first: 10,
            pages: vec![
                WirePageGrant {
                    data: PageBytes::from(vec![1; 4]),
                    version: 3,
                    zero_filled: false,
                    grant_seq: 7,
                },
                WirePageGrant {
                    data: PageBytes::from(vec![2; 4]),
                    version: 0,
                    zero_filled: true,
                    grant_seq: 8,
                },
            ],
        };
        match decode::<DsmReply>(&encode(&reply)).unwrap() {
            DsmReply::Pages { first, pages } => {
                assert_eq!(first, 10);
                assert_eq!(pages.len(), 2);
                assert_eq!(pages[1].grant_seq, 8);
                assert!(pages[1].zero_filled);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn batch_write_back_roundtrip() {
        let req = DsmRequest::WriteBackBatch {
            pages: vec![WireWriteBack {
                seg: SysName::from_parts(5, 6),
                page: 3,
                data: PageBytes::from(vec![9; 16]),
            }],
        };
        let back: DsmRequest = decode(&encode(&req)).unwrap();
        match back {
            DsmRequest::WriteBackBatch { pages } => {
                assert_eq!(pages.len(), 1);
                assert_eq!(pages[0].page, 3);
            }
            other => panic!("wrong decode: {other:?}"),
        }

        let reply = DsmReply::WriteBackResults {
            results: vec![
                Ok(12),
                Err(WireError::SegmentNotFound(SysName::from_parts(5, 6))),
            ],
        };
        match decode::<DsmReply>(&encode(&reply)).unwrap() {
            DsmReply::WriteBackResults { results } => {
                assert_eq!(results[0], Ok(12));
                assert!(results[1].is_err());
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn batch_install_ack_roundtrip() {
        let req = DsmRequest::InstallAckBatch {
            seg: SysName::from_parts(1, 1),
            acks: vec![
                WireInstallAck {
                    page: 0,
                    grant_seq: 1,
                    installed: true,
                },
                WireInstallAck {
                    page: 1,
                    grant_seq: 2,
                    installed: false,
                },
            ],
        };
        match decode::<DsmRequest>(&encode(&req)).unwrap() {
            DsmRequest::InstallAckBatch { acks, .. } => {
                assert!(acks[0].installed);
                assert!(!acks[1].installed);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn replication_requests_roundtrip() {
        let seg = SysName::from_parts(8, 8);
        let req = DsmRequest::MirrorWrite {
            seg,
            page: 2,
            data: PageBytes::from(vec![7; 32]),
            version: 9,
            members: vec![100, 101, 102],
            epoch: 3,
        };
        match decode::<DsmRequest>(&encode(&req)).unwrap() {
            DsmRequest::MirrorWrite {
                page,
                members,
                epoch,
                ..
            } => {
                assert_eq!(page, 2);
                assert_eq!(members, vec![100, 101, 102]);
                assert_eq!(epoch, 3);
            }
            other => panic!("wrong decode: {other:?}"),
        }
        let req = DsmRequest::PromoteSegment { seg, epoch: 4 };
        assert!(matches!(
            decode::<DsmRequest>(&encode(&req)).unwrap(),
            DsmRequest::PromoteSegment { epoch: 4, .. }
        ));
        let req = DsmRequest::CreateReplicated {
            seg,
            len: 4096,
            members: vec![100, 101],
        };
        assert!(matches!(
            decode::<DsmRequest>(&encode(&req)).unwrap(),
            DsmRequest::CreateReplicated { len: 4096, .. }
        ));
    }

    #[test]
    fn error_mapping_roundtrip() {
        let e = RaError::SegmentNotFound(SysName::from_parts(3, 4));
        let w: WireError = e.clone().into();
        let back: RaError = w.into();
        assert_eq!(back, e);
    }

    #[test]
    fn page_grant_decodes_zero_copy_from_shared_buffer() {
        let reply = DsmReply::Page {
            data: PageBytes::from(vec![5u8; 8192]),
            version: 1,
            zero_filled: false,
            grant_seq: 2,
        };
        let wire = encode(&reply);
        let base = wire.as_ref().as_ptr() as usize;
        match decode_shared::<DsmReply>(&wire).unwrap() {
            DsmReply::Page { data, .. } => {
                let ptr = data.as_slice().as_ptr() as usize;
                assert!(
                    ptr >= base && ptr + data.len() <= base + wire.len(),
                    "page payload must alias the reply buffer"
                );
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn decode_garbage_is_error_not_panic() {
        let r: Result<DsmRequest, _> = decode(&[0xFF, 0xFE, 0xFD]);
        assert!(r.is_err());
    }
}
