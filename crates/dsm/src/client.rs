//! The DSM client partition for diskless compute servers.
//!
//! "Compute servers do not have any secondary storage… Secondary storage
//! is provided by data servers" (§3). A compute server reaches every
//! segment through this partition: it discovers which data server homes
//! a segment, demand-pages over RaTP, and answers the data server's
//! recall/downgrade requests against the node's page cache.

use crate::proto::{
    self, ports, DsmReply, DsmRequest, RecallReply, RecallRequest, WireMode,
};
use clouds_ra::{AccessMode, PageCache, PageFetch, Partition, RaError, ReclaimOutcome, SysName};
use clouds_ratp::{CallError, RatpNode, Request};
use clouds_simnet::NodeId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A [`Partition`] that pages segments from remote data servers with
/// coherence. See the crate-level example.
pub struct DsmClientPartition {
    ratp: Arc<RatpNode>,
    cache: Arc<PageCache>,
    data_servers: Vec<NodeId>,
    homes: Mutex<HashMap<SysName, NodeId>>,
}

impl fmt::Debug for DsmClientPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsmClientPartition")
            .field("node", &self.ratp.node_id())
            .field("data_servers", &self.data_servers)
            .finish()
    }
}

impl DsmClientPartition {
    /// Create the partition and register the recall service
    /// ([`ports::DSM_CLIENT`]) on this node.
    ///
    /// # Panics
    ///
    /// Panics if `data_servers` is empty.
    pub fn install(
        ratp: &Arc<RatpNode>,
        cache: Arc<PageCache>,
        data_servers: Vec<NodeId>,
    ) -> Arc<DsmClientPartition> {
        assert!(
            !data_servers.is_empty(),
            "a DSM client needs at least one data server"
        );
        let part = Arc::new(DsmClientPartition {
            ratp: Arc::clone(ratp),
            cache: Arc::clone(&cache),
            data_servers,
            homes: Mutex::new(HashMap::new()),
        });
        ratp.register_service(ports::DSM_CLIENT, move |req: Request| {
            let reply = match proto::decode::<RecallRequest>(&req.payload) {
                Ok(RecallRequest::Reclaim { seg, page }) => match cache.reclaim((seg, page)) {
                    ReclaimOutcome::NotPresent => RecallReply::NotPresent,
                    ReclaimOutcome::Taken { dirty_data: None } => RecallReply::Clean,
                    ReclaimOutcome::Taken {
                        dirty_data: Some(data),
                    } => RecallReply::Dirty(data),
                },
                Ok(RecallRequest::Downgrade { seg, page }) => {
                    match cache.downgrade((seg, page)) {
                        Some(data) => RecallReply::Dirty(data),
                        None => RecallReply::Clean,
                    }
                }
                Err(_) => RecallReply::NotPresent,
            };
            proto::encode(&reply)
        });
        part
    }

    /// This node's page cache (the one recalls are served from).
    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// The data servers this client knows about.
    pub fn data_servers(&self) -> &[NodeId] {
        &self.data_servers
    }

    /// Create a segment on a *specific* data server (used for explicit
    /// replica placement by PET).
    ///
    /// # Errors
    ///
    /// Propagates the server's error or transport failure.
    pub fn create_segment_at(&self, seg: SysName, len: u64, home: NodeId) -> clouds_ra::Result<()> {
        match self.call(home, &DsmRequest::CreateSegment { seg, len })? {
            DsmReply::Ok => {
                self.homes.lock().insert(seg, home);
                Ok(())
            }
            DsmReply::Err(e) => Err(e.into()),
            other => Err(unexpected(other)),
        }
    }

    /// Default placement for a fresh segment: hash over the data servers.
    pub fn default_home(&self, seg: SysName) -> NodeId {
        let idx = (seg.as_u128() % self.data_servers.len() as u128) as usize;
        self.data_servers[idx]
    }

    /// Drop any cached home mapping (tests, failover).
    pub fn forget_home(&self, seg: SysName) {
        self.homes.lock().remove(&seg);
    }

    /// The data server homing `seg` (discovering it if unknown). Used by
    /// lock placement: segment locks live on the segment's home server.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`] if no data server has the segment.
    pub fn home_of(&self, seg: SysName) -> clouds_ra::Result<NodeId> {
        self.resolve(seg)
    }

    /// The transport node this partition runs on.
    pub fn ratp(&self) -> &Arc<RatpNode> {
        &self.ratp
    }

    fn call(&self, server: NodeId, req: &DsmRequest) -> clouds_ra::Result<DsmReply> {
        match self.ratp.call(server, ports::DSM_SERVER, proto::encode(req)) {
            Ok(bytes) => proto::decode(&bytes),
            Err(CallError::TimedOut) => Err(RaError::PartitionUnavailable(format!(
                "data server {server} unreachable"
            ))),
            Err(e) => Err(RaError::PartitionUnavailable(e.to_string())),
        }
    }

    /// Find (and remember) the data server homing `seg`, probing all
    /// known data servers on a cache miss.
    fn resolve(&self, seg: SysName) -> clouds_ra::Result<NodeId> {
        if let Some(home) = self.homes.lock().get(&seg) {
            return Ok(*home);
        }
        // Probe the default home first (cheap hit for hash-placed
        // segments), then the rest.
        let mut order = vec![self.default_home(seg)];
        for &ds in &self.data_servers {
            if !order.contains(&ds) {
                order.push(ds);
            }
        }
        for server in order {
            match self.call(server, &DsmRequest::SegmentLen { seg }) {
                Ok(DsmReply::Len(_)) => {
                    self.homes.lock().insert(seg, server);
                    return Ok(server);
                }
                Ok(_) | Err(_) => continue,
            }
        }
        Err(RaError::SegmentNotFound(seg))
    }

    fn on_home<T>(
        &self,
        seg: SysName,
        f: impl Fn(NodeId) -> clouds_ra::Result<T>,
    ) -> clouds_ra::Result<T> {
        let home = self.resolve(seg)?;
        match f(home) {
            Err(RaError::SegmentNotFound(_)) => {
                // Stale home cache (segment moved/recreated): rediscover once.
                self.forget_home(seg);
                let home = self.resolve(seg)?;
                f(home)
            }
            other => other,
        }
    }
}

fn unexpected(reply: DsmReply) -> RaError {
    RaError::PartitionUnavailable(format!("unexpected DSM reply: {reply:?}"))
}

impl Partition for DsmClientPartition {
    fn create_segment(&self, seg: SysName, len: u64) -> clouds_ra::Result<()> {
        self.create_segment_at(seg, len, self.default_home(seg))
    }

    fn destroy_segment(&self, seg: SysName) -> clouds_ra::Result<()> {
        self.on_home(seg, |home| {
            match self.call(home, &DsmRequest::DestroySegment { seg })? {
                DsmReply::Ok => Ok(()),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
        .inspect(|()| self.forget_home(seg))
    }

    fn segment_len(&self, seg: SysName) -> clouds_ra::Result<u64> {
        self.on_home(seg, |home| {
            match self.call(home, &DsmRequest::SegmentLen { seg })? {
                DsmReply::Len(len) => Ok(len),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn fetch_page(&self, seg: SysName, page: u32, mode: AccessMode) -> clouds_ra::Result<PageFetch> {
        let wire_mode = match mode {
            AccessMode::Read => WireMode::Read,
            AccessMode::Write => WireMode::Write,
        };
        self.on_home(seg, |home| {
            match self.call(
                home,
                &DsmRequest::FetchPage {
                    seg,
                    page,
                    mode: wire_mode,
                },
            )? {
                DsmReply::Page {
                    data,
                    version,
                    zero_filled,
                    grant_seq,
                } => Ok(PageFetch {
                    data,
                    version,
                    zero_filled,
                    grant_seq,
                }),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn write_back(&self, seg: SysName, page: u32, data: &[u8]) -> clouds_ra::Result<u64> {
        self.on_home(seg, |home| {
            match self.call(
                home,
                &DsmRequest::WriteBack {
                    seg,
                    page,
                    data: data.to_vec(),
                    release: false,
                },
            )? {
                DsmReply::Ok => Ok(0),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn release_page(&self, seg: SysName, page: u32) -> clouds_ra::Result<()> {
        self.on_home(seg, |home| {
            match self.call(home, &DsmRequest::ReleasePage { seg, page })? {
                DsmReply::Ok => Ok(()),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn ack_page_install(&self, seg: SysName, page: u32, grant_seq: u64) {
        // Fire-and-forget: if the ack is lost the manager's deadline
        // expires and coherence proceeds conservatively.
        if let Some(home) = self.homes.lock().get(&seg).copied() {
            self.ratp.notify(
                home,
                ports::DSM_SERVER,
                proto::encode(&DsmRequest::InstallAck {
                    seg,
                    page,
                    grant_seq,
                }),
            );
        }
    }
}
