//! The DSM client partition for diskless compute servers.
//!
//! "Compute servers do not have any secondary storage… Secondary storage
//! is provided by data servers" (§3). A compute server reaches every
//! segment through this partition: it discovers which data server homes
//! a segment, demand-pages over RaTP, and answers the data server's
//! recall/downgrade requests against the node's page cache.

use crate::proto::{
    self, ports, DsmReply, DsmRequest, RecallReply, RecallRequest, WireInstallAck, WireMode,
    WireWriteBack,
};
use clouds_codec::PageBytes;
use clouds_obs::{current_ctx, install_ctx, Counter, Histogram, NodeObs};
use clouds_ra::{
    AccessMode, PageCache, PageFetch, Partition, RaError, ReclaimOutcome, SysName, WriteBackItem,
};
use clouds_ratp::{CallError, RatpNode, Request};
use clouds_simnet::NodeId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Failover patience: how many times a faulting operation re-resolves
/// the segment's home after a retriable failure before surfacing the
/// error. A crashed primary first burns the operation's own call budget,
/// then each attempt here costs one bounded home re-discovery — by which
/// time the failure-detector has long since promoted a backup.
const FAILOVER_ATTEMPTS: u32 = 10;

/// Pause between failover re-resolutions: gives the data servers' monitor
/// a beat to detect the dead primary and re-home the segment.
const FAILOVER_BACKOFF: Duration = Duration::from_millis(25);

/// Retry budget for home-discovery probes. Bounded (unlike ordinary
/// calls) so a probe to a *crashed* server abandons quickly instead of
/// pinning the resolve for the full patient call budget — a live server
/// answers a probe in one or two round trips, and a false negative only
/// costs one [`FAILOVER_ATTEMPTS`] round.
const PROBE_RETRIES: u32 = 80;

/// Tunables for a [`DsmClientPartition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmClientConfig {
    /// Maximum pages requested per sequential read fault (the faulting
    /// page plus up to `read_ahead_window - 1` read-ahead pages). Set to
    /// `0` or `1` to disable read-ahead entirely — every fault then
    /// issues a single-page `FetchPage` exactly as before.
    pub read_ahead_window: u32,
    /// Coalesce [`Partition::write_back_batch`] into one `WriteBackBatch`
    /// RPC per home server (pipelined across homes). `false` falls back
    /// to one RPC per page.
    pub batch_write_backs: bool,
}

impl Default for DsmClientConfig {
    fn default() -> DsmClientConfig {
        DsmClientConfig {
            read_ahead_window: 8,
            batch_write_backs: true,
        }
    }
}

/// Client-side paging counters: how much batching actually happened.
///
/// This struct is a **read shim** over the node's
/// [`clouds_obs::MetricsRegistry`] (counters `dsm.client.*`) plus the
/// page cache's prefetch counters; the partition itself keeps no ad-hoc
/// statistics. [`DsmClientPartition::stats`] assembles a snapshot with
/// the historical field names so existing consumers keep working.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DsmClientStats {
    /// Fetch RPCs issued (`FetchPage` + `FetchPages`).
    pub fetch_rpcs: u64,
    /// Multi-page `FetchPages` RPCs issued (subset of `fetch_rpcs`).
    pub batch_fetches: u64,
    /// Total pages granted across all fetch RPCs.
    pub pages_granted: u64,
    /// Read-ahead frames installed into the cache.
    pub prefetch_installs: u64,
    /// Faults avoided because read-ahead had the page resident.
    pub prefetch_hits: u64,
    /// Read-ahead frames evicted or recalled before first use.
    pub prefetch_wasted: u64,
    /// `WriteBackBatch` RPCs issued.
    pub batch_write_back_rpcs: u64,
    /// Dirty pages shipped inside those batches.
    pub pages_written_batched: u64,
    /// Dirty evictions whose release rode on the write-back message.
    pub merged_evictions: u64,
    /// Round trips avoided versus the unbatched protocol: one per
    /// prefetch hit, one per batched page beyond the first of its RPC,
    /// and one per merged dirty eviction.
    pub rtts_saved: u64,
}

/// A [`Partition`] that pages segments from remote data servers with
/// coherence. See the crate-level example.
pub struct DsmClientPartition {
    ratp: Arc<RatpNode>,
    cache: Arc<PageCache>,
    data_servers: Vec<NodeId>,
    homes: Mutex<HashMap<SysName, NodeId>>,
    config: DsmClientConfig,
    /// Sequential-access detector: per segment, the page index one past
    /// the newest grant. A read fault landing exactly there is part of a
    /// sequential scan and fetches a whole window.
    next_expected: Mutex<HashMap<SysName, u32>>,
    obs: Arc<NodeObs>,
    metrics: ClientMetrics,
}

/// Registry-backed paging counters (`dsm.client.*`), cached at install
/// so the fault path never resolves names.
struct ClientMetrics {
    fetch_rpcs: Arc<Counter>,
    batch_fetches: Arc<Counter>,
    pages_granted: Arc<Counter>,
    batch_write_back_rpcs: Arc<Counter>,
    pages_written_batched: Arc<Counter>,
    merged_evictions: Arc<Counter>,
    fetch_latency: Arc<Histogram>,
}

impl ClientMetrics {
    fn new(obs: &NodeObs) -> ClientMetrics {
        ClientMetrics {
            fetch_rpcs: obs.counter("dsm.client.fetch_rpcs"),
            batch_fetches: obs.counter("dsm.client.batch_fetches"),
            pages_granted: obs.counter("dsm.client.pages_granted"),
            batch_write_back_rpcs: obs.counter("dsm.client.batch_write_back_rpcs"),
            pages_written_batched: obs.counter("dsm.client.pages_written_batched"),
            merged_evictions: obs.counter("dsm.client.merged_evictions"),
            fetch_latency: obs.histogram("dsm.client.fetch"),
        }
    }
}

impl fmt::Debug for DsmClientPartition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsmClientPartition")
            .field("node", &self.ratp.node_id())
            .field("data_servers", &self.data_servers)
            .finish()
    }
}

impl DsmClientPartition {
    /// Create the partition and register the recall service
    /// ([`ports::DSM_CLIENT`]) on this node.
    ///
    /// # Panics
    ///
    /// Panics if `data_servers` is empty.
    pub fn install(
        ratp: &Arc<RatpNode>,
        cache: Arc<PageCache>,
        data_servers: Vec<NodeId>,
    ) -> Arc<DsmClientPartition> {
        DsmClientPartition::install_with_config(ratp, cache, data_servers, DsmClientConfig::default())
    }

    /// Like [`DsmClientPartition::install`] with explicit tunables (e.g.
    /// `read_ahead_window: 1` to disable read-ahead).
    ///
    /// # Panics
    ///
    /// Panics if `data_servers` is empty.
    pub fn install_with_config(
        ratp: &Arc<RatpNode>,
        cache: Arc<PageCache>,
        data_servers: Vec<NodeId>,
        config: DsmClientConfig,
    ) -> Arc<DsmClientPartition> {
        assert!(
            !data_servers.is_empty(),
            "a DSM client needs at least one data server"
        );
        let obs = Arc::clone(ratp.obs());
        let part = Arc::new(DsmClientPartition {
            ratp: Arc::clone(ratp),
            cache: Arc::clone(&cache),
            data_servers,
            homes: Mutex::new(HashMap::new()),
            config,
            next_expected: Mutex::new(HashMap::new()),
            metrics: ClientMetrics::new(&obs),
            obs,
        });
        let obs = Arc::clone(part.ratp.obs());
        ratp.register_service(ports::DSM_CLIENT, move |req: Request| {
            let reply = match proto::decode::<RecallRequest>(&req.payload) {
                Ok(RecallRequest::Reclaim { seg, page }) => {
                    obs.instant("dsm.client", "recall", format!("seg={seg} page={page}"));
                    match cache.reclaim((seg, page)) {
                        ReclaimOutcome::NotPresent => RecallReply::NotPresent,
                        ReclaimOutcome::Taken { dirty_data: None } => RecallReply::Clean,
                        ReclaimOutcome::Taken {
                            dirty_data: Some(data),
                        } => RecallReply::Dirty(PageBytes::from(data)),
                    }
                }
                Ok(RecallRequest::Downgrade { seg, page }) => {
                    obs.instant("dsm.client", "downgrade", format!("seg={seg} page={page}"));
                    match cache.downgrade((seg, page)) {
                        Some(data) => RecallReply::Dirty(PageBytes::from(data)),
                        None => RecallReply::Clean,
                    }
                }
                Err(_) => RecallReply::NotPresent,
            };
            proto::encode(&reply)
        });
        part
    }

    /// This node's page cache (the one recalls are served from).
    pub fn cache(&self) -> &Arc<PageCache> {
        &self.cache
    }

    /// The tunables this partition was installed with.
    pub fn config(&self) -> DsmClientConfig {
        self.config
    }

    /// Snapshot of the client-side paging counters: the read shim over
    /// the metrics registry (`dsm.client.*`), merged with the cache's
    /// prefetch counters.
    pub fn stats(&self) -> DsmClientStats {
        let cache = self.cache.stats();
        let batch_rpcs = self.metrics.batch_write_back_rpcs.get();
        let batch_pages = self.metrics.pages_written_batched.get();
        let merged = self.metrics.merged_evictions.get();
        DsmClientStats {
            fetch_rpcs: self.metrics.fetch_rpcs.get(),
            batch_fetches: self.metrics.batch_fetches.get(),
            pages_granted: self.metrics.pages_granted.get(),
            prefetch_installs: cache.prefetch_installs,
            prefetch_hits: cache.prefetch_hits,
            prefetch_wasted: cache.prefetch_wasted,
            batch_write_back_rpcs: batch_rpcs,
            pages_written_batched: batch_pages,
            merged_evictions: merged,
            rtts_saved: cache.prefetch_hits + batch_pages.saturating_sub(batch_rpcs) + merged,
        }
    }

    /// This node's observability handle (same as the transport's).
    pub fn obs(&self) -> &Arc<NodeObs> {
        &self.obs
    }

    /// The data servers this client knows about.
    pub fn data_servers(&self) -> &[NodeId] {
        &self.data_servers
    }

    /// Create a segment on a *specific* data server (used for explicit
    /// replica placement by PET).
    ///
    /// # Errors
    ///
    /// Propagates the server's error or transport failure.
    pub fn create_segment_at(&self, seg: SysName, len: u64, home: NodeId) -> clouds_ra::Result<()> {
        match self.call(home, &DsmRequest::CreateSegment { seg, len })? {
            DsmReply::Ok => {
                self.homes.lock().insert(seg, home);
                Ok(())
            }
            DsmReply::Err(e) => Err(e.into()),
            other => Err(unexpected(other)),
        }
    }

    /// Create a segment replicated across `members` (primary first,
    /// backups in promotion order). The primary creates the canonical
    /// copy and pushes a `MirrorCreate` to every backup before replying,
    /// so the whole replica set exists before the first write. The caller
    /// is expected to also register the set with the naming directory
    /// (`NameClient::register_replicas`) so failover can re-home it.
    ///
    /// # Errors
    ///
    /// Propagates the primary's error (including any backup's refusal,
    /// surfaced by the primary) or transport failure; rejects an empty
    /// member list.
    pub fn create_replicated_segment(
        &self,
        seg: SysName,
        len: u64,
        members: &[NodeId],
    ) -> clouds_ra::Result<()> {
        let Some((&primary, _)) = members.split_first() else {
            return Err(RaError::PartitionUnavailable(
                "replica set must name at least a primary".into(),
            ));
        };
        let wire = members.iter().map(|n| n.0).collect();
        match self.call(
            primary,
            &DsmRequest::CreateReplicated {
                seg,
                len,
                members: wire,
            },
        )? {
            DsmReply::Ok => {
                self.homes.lock().insert(seg, primary);
                Ok(())
            }
            DsmReply::Err(e) => Err(e.into()),
            other => Err(unexpected(other)),
        }
    }

    /// Default placement for a fresh segment: hash over the data servers.
    pub fn default_home(&self, seg: SysName) -> NodeId {
        let idx = (seg.as_u128() % self.data_servers.len() as u128) as usize;
        self.data_servers[idx]
    }

    /// Drop any cached home mapping (tests, failover).
    pub fn forget_home(&self, seg: SysName) {
        self.homes.lock().remove(&seg);
    }

    /// The data server homing `seg` (discovering it if unknown). Used by
    /// lock placement: segment locks live on the segment's home server.
    ///
    /// # Errors
    ///
    /// [`RaError::SegmentNotFound`] if no data server has the segment.
    pub fn home_of(&self, seg: SysName) -> clouds_ra::Result<NodeId> {
        self.resolve(seg)
    }

    /// The transport node this partition runs on.
    pub fn ratp(&self) -> &Arc<RatpNode> {
        &self.ratp
    }

    fn call(&self, server: NodeId, req: &DsmRequest) -> clouds_ra::Result<DsmReply> {
        match self.ratp.call(server, ports::DSM_SERVER, proto::encode(req)) {
            // Shared decode: granted page images stay refcounted slices
            // of the reply buffer; the only copy left on the fetch path
            // is the one installing the frame into the page cache.
            Ok(bytes) => proto::decode_shared(&bytes),
            Err(CallError::TimedOut) => Err(RaError::PartitionUnavailable(format!(
                "data server {server} unreachable"
            ))),
            Err(e) => Err(RaError::PartitionUnavailable(e.to_string())),
        }
    }

    /// Find (and remember) the data server homing `seg`, probing all
    /// known data servers on a cache miss.
    ///
    /// All candidates are probed in parallel: only the actual home
    /// answers `Len`, so the first positive reply wins, and a crashed
    /// server burns its call timeout on its own probe thread instead of
    /// serially stalling the fault for the full timeout per dead server.
    fn resolve(&self, seg: SysName) -> clouds_ra::Result<NodeId> {
        if let Some(home) = self.homes.lock().get(&seg) {
            return Ok(*home);
        }
        if let [server] = self.data_servers[..] {
            return match self.call(server, &DsmRequest::SegmentLen { seg }) {
                Ok(DsmReply::Len(_)) => {
                    self.homes.lock().insert(seg, server);
                    Ok(server)
                }
                _ => Err(RaError::SegmentNotFound(seg)),
            };
        }
        let (tx, rx) = std::sync::mpsc::channel();
        // Probe threads inherit the faulting thread's causal context so
        // their RaTP calls stay inside the ambient trace.
        let ctx = current_ctx();
        for &server in &self.data_servers {
            let ratp = Arc::clone(&self.ratp);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let _trace = ctx.map(install_ctx);
                let found = matches!(
                    ratp.call_with_budget(
                        server,
                        ports::DSM_SERVER,
                        proto::encode(&DsmRequest::SegmentLen { seg }),
                        PROBE_RETRIES,
                    )
                    .map(|bytes| proto::decode::<DsmReply>(&bytes)),
                    Ok(Ok(DsmReply::Len(_)))
                );
                let _ = tx.send((server, found));
            });
        }
        drop(tx);
        while let Ok((server, found)) = rx.recv() {
            if found {
                self.homes.lock().insert(seg, server);
                return Ok(server);
            }
        }
        Err(RaError::SegmentNotFound(seg))
    }

    fn is_sequential(&self, seg: SysName, page: u32) -> bool {
        self.next_expected.lock().get(&seg) == Some(&page)
    }

    /// Record that pages `first .. first + granted` were just granted,
    /// arming the detector for the page right after the run.
    fn note_grant(&self, seg: SysName, first: u32, granted: u32) {
        self.next_expected
            .lock()
            .insert(seg, first.saturating_add(granted));
    }

    /// Sequential read fault: fetch a whole window with one RPC. The
    /// faulting page is returned (the cache installs and acks it as
    /// usual); the read-ahead tail is installed here as clean frames and
    /// every tail grant is acknowledged in one batched notify — pages
    /// the cache declined (full, or slot raced) are acked with
    /// `installed: false` so the server forgets those copies.
    fn fetch_batch(&self, seg: SysName, first: u32, window: u32) -> clouds_ra::Result<PageFetch> {
        self.metrics.fetch_rpcs.inc();
        self.metrics.batch_fetches.inc();
        let detail = format!("seg={seg} first={first} window={window}");
        let mut span = self
            .obs
            .traced_span("dsm.client", "fetch_pages", &detail)
            .with_histogram(Arc::clone(&self.metrics.fetch_latency));
        span.set_args(detail);
        self.on_home(seg, |home| {
            match self.call(
                home,
                &DsmRequest::FetchPages {
                    seg,
                    first,
                    count: window,
                    mode: WireMode::Read,
                },
            )? {
                DsmReply::Pages { first: f, mut pages } if f == first && !pages.is_empty() => {
                    self.metrics.pages_granted.add(pages.len() as u64);
                    let tail = pages.split_off(1);
                    let head = pages.pop().expect("non-empty checked above");
                    let mut acks = Vec::with_capacity(tail.len());
                    for (i, grant) in tail.into_iter().enumerate() {
                        let page = first + 1 + i as u32;
                        let installed = self.cache.install_prefetched(
                            (seg, page),
                            grant.data.to_vec(),
                            grant.version,
                        );
                        acks.push(WireInstallAck {
                            page,
                            grant_seq: grant.grant_seq,
                            installed,
                        });
                    }
                    let granted = 1 + acks.len() as u32;
                    if !acks.is_empty() {
                        self.ratp.notify(
                            home,
                            ports::DSM_SERVER,
                            proto::encode(&DsmRequest::InstallAckBatch { seg, acks }),
                        );
                    }
                    self.note_grant(seg, first, granted);
                    Ok(PageFetch {
                        data: head.data.to_vec(),
                        version: head.version,
                        zero_filled: head.zero_filled,
                        grant_seq: head.grant_seq,
                    })
                }
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
    }

    /// Ship one home server's group of dirty pages in a single RPC,
    /// returning per-page results aligned with `pages`.
    fn send_write_back_batch(
        &self,
        home: NodeId,
        pages: Vec<WireWriteBack>,
    ) -> Vec<clouds_ra::Result<u64>> {
        let n = pages.len();
        self.metrics.batch_write_back_rpcs.inc();
        self.metrics.pages_written_batched.add(n as u64);
        let detail = format!("home={} pages={n}", home.0);
        let mut span = self.obs.traced_span("dsm.client", "write_back_batch", &detail);
        span.set_args(detail);
        match self.call(home, &DsmRequest::WriteBackBatch { pages }) {
            Ok(DsmReply::WriteBackResults { results }) if results.len() == n => results
                .into_iter()
                .map(|r| r.map_err(RaError::from))
                .collect(),
            Ok(DsmReply::Err(e)) => {
                let e: RaError = e.into();
                (0..n).map(|_| Err(e.clone())).collect()
            }
            Ok(other) => {
                let e = unexpected(other);
                (0..n).map(|_| Err(e.clone())).collect()
            }
            Err(e) => (0..n).map(|_| Err(e.clone())).collect(),
        }
    }

    /// Run `f` against the segment's home, riding out re-homing: a
    /// `SegmentNotFound` (stale home cache, or a backup not yet promoted)
    /// or `PartitionUnavailable` (home crashed mid-call) drops the cached
    /// home and rediscovers, up to [`FAILOVER_ATTEMPTS`] times. An
    /// in-flight fetch or write-back therefore lands on the *new* primary
    /// after a failover instead of surfacing the crash to the fault
    /// handler. `ReplicaUnavailable` is *not* retried — the home is
    /// reachable but one of its backups is not, so each re-resolution
    /// would find the same home and burn the full mirror patience again;
    /// it surfaces promptly instead.
    fn on_home<T>(
        &self,
        seg: SysName,
        f: impl Fn(NodeId) -> clouds_ra::Result<T>,
    ) -> clouds_ra::Result<T> {
        let mut last = None;
        for attempt in 0..FAILOVER_ATTEMPTS {
            if attempt > 0 {
                self.forget_home(seg);
                std::thread::sleep(FAILOVER_BACKOFF);
            }
            match self.resolve(seg).and_then(&f) {
                Err(e @ (RaError::SegmentNotFound(_) | RaError::PartitionUnavailable(_))) => {
                    last = Some(e);
                }
                other => return other,
            }
        }
        Err(last.expect("FAILOVER_ATTEMPTS > 0"))
    }
}

fn unexpected(reply: DsmReply) -> RaError {
    RaError::PartitionUnavailable(format!("unexpected DSM reply: {reply:?}"))
}

impl Partition for DsmClientPartition {
    fn create_segment(&self, seg: SysName, len: u64) -> clouds_ra::Result<()> {
        self.create_segment_at(seg, len, self.default_home(seg))
    }

    fn destroy_segment(&self, seg: SysName) -> clouds_ra::Result<()> {
        self.on_home(seg, |home| {
            match self.call(home, &DsmRequest::DestroySegment { seg })? {
                DsmReply::Ok => Ok(()),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
        .inspect(|()| self.forget_home(seg))
    }

    fn segment_len(&self, seg: SysName) -> clouds_ra::Result<u64> {
        self.on_home(seg, |home| {
            match self.call(home, &DsmRequest::SegmentLen { seg })? {
                DsmReply::Len(len) => Ok(len),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn fetch_page(&self, seg: SysName, page: u32, mode: AccessMode) -> clouds_ra::Result<PageFetch> {
        let window = self.config.read_ahead_window;
        if mode == AccessMode::Read && window > 1 && self.is_sequential(seg, page) {
            return self.fetch_batch(seg, page, window);
        }
        let wire_mode = match mode {
            AccessMode::Read => WireMode::Read,
            AccessMode::Write => WireMode::Write,
        };
        self.metrics.fetch_rpcs.inc();
        let detail = format!("seg={seg} page={page} mode={mode:?}");
        let mut span = self
            .obs
            .traced_span("dsm.client", "fetch_page", &detail)
            .with_histogram(Arc::clone(&self.metrics.fetch_latency));
        span.set_args(detail);
        let fetched = self.on_home(seg, |home| {
            match self.call(
                home,
                &DsmRequest::FetchPage {
                    seg,
                    page,
                    mode: wire_mode,
                },
            )? {
                DsmReply::Page {
                    data,
                    version,
                    zero_filled,
                    grant_seq,
                } => Ok(PageFetch {
                    data: data.to_vec(),
                    version,
                    zero_filled,
                    grant_seq,
                }),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })?;
        self.metrics.pages_granted.inc();
        if mode == AccessMode::Read {
            self.note_grant(seg, page, 1);
        }
        Ok(fetched)
    }

    fn write_back(&self, seg: SysName, page: u32, data: &[u8]) -> clouds_ra::Result<u64> {
        self.on_home(seg, |home| {
            match self.call(
                home,
                &DsmRequest::WriteBack {
                    seg,
                    page,
                    data: PageBytes::copy_from_slice(data),
                    release: false,
                },
            )? {
                DsmReply::Ok => Ok(0),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
    }

    /// One `WriteBackBatch` RPC per home server, pipelined across
    /// distinct homes with scoped threads: an N-page commit flush costs
    /// one round trip per server instead of N.
    fn write_back_batch(&self, items: &[WriteBackItem]) -> Vec<clouds_ra::Result<u64>> {
        if !self.config.batch_write_backs || items.len() <= 1 {
            return items
                .iter()
                .map(|p| self.write_back(p.seg, p.page, &p.data))
                .collect();
        }
        let mut results: Vec<clouds_ra::Result<u64>> = items
            .iter()
            .map(|_| {
                Err(RaError::PartitionUnavailable(
                    "write-back batch item unresolved".into(),
                ))
            })
            .collect();
        let mut groups: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
        for (i, item) in items.iter().enumerate() {
            match self.resolve(item.seg) {
                Ok(home) => groups.entry(home).or_default().push(i),
                Err(e) => results[i] = Err(e),
            }
        }
        // Per-home threads inherit the committing thread's causal
        // context: the batch spans parent under the ambient span.
        let ctx = current_ctx();
        let outcomes: Vec<(Vec<usize>, Vec<clouds_ra::Result<u64>>)> = std::thread::scope(|s| {
            let handles: Vec<_> = groups
                .into_iter()
                .map(|(home, idxs)| {
                    s.spawn(move || {
                        let _trace = ctx.map(install_ctx);
                        let pages: Vec<WireWriteBack> = idxs
                            .iter()
                            .map(|&i| WireWriteBack {
                                seg: items[i].seg,
                                page: items[i].page,
                                data: PageBytes::copy_from_slice(&items[i].data),
                            })
                            .collect();
                        let res = self.send_write_back_batch(home, pages);
                        (idxs, res)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("write-back batch thread panicked"))
                .collect()
        });
        for (idxs, group_results) in outcomes {
            for (i, r) in idxs.into_iter().zip(group_results) {
                results[i] = r;
            }
        }
        // Pages fenced off by a stale home — `SegmentNotFound` from a
        // demoted ex-primary or a not-yet-promoted backup — are
        // re-driven through the single-page path, whose `on_home` loop
        // drops the cached home and rediscovers across the failover.
        // Only the fencing error is re-driven: a transport failure
        // (`PartitionUnavailable`) keeps the historical flush contract
        // (the flush fails, frames stay dirty, the caller retries), and
        // `ReplicaUnavailable` means the home answered but a backup is
        // down — re-resolution cannot change either.
        for (i, item) in items.iter().enumerate() {
            if matches!(results[i], Err(RaError::SegmentNotFound(_))) {
                self.forget_home(item.seg);
                results[i] = self.write_back(item.seg, item.page, &item.data);
            }
        }
        results
    }

    /// Dirty eviction in one round trip: the write-back message carries
    /// the release flag instead of a separate `ReleasePage` call.
    fn write_back_and_release(&self, seg: SysName, page: u32, data: &[u8]) -> clouds_ra::Result<u64> {
        self.on_home(seg, |home| {
            match self.call(
                home,
                &DsmRequest::WriteBack {
                    seg,
                    page,
                    data: PageBytes::copy_from_slice(data),
                    release: true,
                },
            )? {
                DsmReply::Ok => Ok(0),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
        .inspect(|_| {
            self.metrics.merged_evictions.inc();
        })
    }

    fn release_page(&self, seg: SysName, page: u32) -> clouds_ra::Result<()> {
        self.on_home(seg, |home| {
            match self.call(home, &DsmRequest::ReleasePage { seg, page })? {
                DsmReply::Ok => Ok(()),
                DsmReply::Err(e) => Err(e.into()),
                other => Err(unexpected(other)),
            }
        })
    }

    fn ack_page_install(&self, seg: SysName, page: u32, grant_seq: u64) {
        // Fire-and-forget: if the ack is lost the manager's deadline
        // expires and coherence proceeds conservatively.
        // Copy the home out first: an `if let` scrutinee would keep the
        // `homes` guard alive across the notify send.
        let home = self.homes.lock().get(&seg).copied();
        if let Some(home) = home {
            self.ratp.notify(
                home,
                ports::DSM_SERVER,
                proto::encode(&DsmRequest::InstallAck {
                    seg,
                    page,
                    grant_seq,
                }),
            );
        }
    }
}
