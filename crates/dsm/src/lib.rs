//! `clouds-dsm` — **Distributed Shared Memory** with one-copy semantics.
//!
//! The Clouds name space of objects "constitutes a shared sparse address
//! space … available on every machine in the system, providing a
//! globally shared (yet distributed) memory" (§3.2 box). When a thread
//! on node A invokes an object O that is not resident at A, "this causes
//! a series of page faults which are serviced by demand paging the pages
//! of O from the data server(s) where they currently reside", and if O
//! is simultaneously in use at node B, "care must be taken to ensure
//! that at all times A and B see the exact same contents of O. This is
//! called one-copy semantics. The maintenance of one-copy semantics is
//! achieved by coherence protocols" — the paper cites Li & Hudak's
//! shared virtual memory work and makes the data servers run the
//! protocol.
//!
//! This crate implements that design:
//!
//! * [`DsmServer`] — runs on every data server. Holds the canonical
//!   [`clouds_ra::SegmentStore`] plus a per-page coherence directory
//!   (owner/copyset). Read faults create shared copies; write faults
//!   recall every other copy (invalidation protocol) before granting
//!   exclusive ownership. Also hosts the segment-level
//!   [`LockService`] and distributed [`SemaphoreService`] — "the data
//!   servers also provide support for distributed synchronization".
//! * [`DsmClientPartition`] — a [`clouds_ra::Partition`] for diskless
//!   compute servers: demand-pages over RaTP, discovers which data
//!   server homes a segment, and answers recall/downgrade requests
//!   against the node's [`clouds_ra::PageCache`].
//!
//! # Examples
//!
//! Two compute servers sharing one segment coherently through a data
//! server:
//!
//! ```
//! use clouds_dsm::{DsmClientPartition, DsmServer};
//! use clouds_ra::{PageCache, Partition, AddressSpace, PAGE_SIZE, SysName};
//! use clouds_ratp::{RatpConfig, RatpNode};
//! use clouds_simnet::{CostModel, Network, NodeId};
//! use std::sync::Arc;
//!
//! let net = Network::new(CostModel::zero());
//! let ds = RatpNode::spawn(net.register(NodeId(10)).unwrap(), RatpConfig::default());
//! let _server = DsmServer::install(&ds);
//!
//! let make_client = |id| {
//!     let ratp = RatpNode::spawn(net.register(id).unwrap(), RatpConfig::default());
//!     let cache = Arc::new(PageCache::new(64));
//!     DsmClientPartition::install(&ratp, Arc::clone(&cache), vec![NodeId(10)])
//! };
//! let a = make_client(NodeId(1));
//! let b = make_client(NodeId(2));
//!
//! let seg = SysName::from_parts(1, 99);
//! a.create_segment(seg, PAGE_SIZE as u64).unwrap();
//!
//! let mut sa = AddressSpace::new(a.cache().clone(), a.clone() as Arc<dyn Partition>);
//! let mut sb = AddressSpace::new(b.cache().clone(), b.clone() as Arc<dyn Partition>);
//! sa.map(0, seg, 0, PAGE_SIZE as u64, true).unwrap();
//! sb.map(0, seg, 0, PAGE_SIZE as u64, true).unwrap();
//!
//! sa.write(0, b"one copy").unwrap();
//! // B's read recalls A's exclusive copy through the data server.
//! assert_eq!(sb.read(0, 8).unwrap(), b"one copy");
//! ```

#![forbid(unsafe_code)]

mod client;
mod locks;
pub mod proto;
mod semaphore;
mod server;

pub use client::{DsmClientConfig, DsmClientPartition, DsmClientStats};
pub use locks::{LockMode, LockOutcome, LockReply, LockRequest, LockService};
pub use proto::ports;
pub use semaphore::{SemReply, SemRequest, SemaphoreService};
pub use server::{DsmServer, DsmServerStats};
