//! Distributed semaphores, the user-visible synchronization primitive.
//!
//! §2.2: "Concurrency control within the object is handled by the
//! programmer of objects using system supported synchronization
//! primitives such as locks or semaphores." Because threads executing in
//! the same object may be on *different compute servers* (§3.2), these
//! primitives must be network-wide; the paper places that support on the
//! data servers. This service implements counting semaphores addressed
//! by sysname.

use crate::proto::{self, ports};
use clouds_ra::SysName;
use clouds_ratp::{RatpNode, Request};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requests accepted by the semaphore service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SemRequest {
    /// Create a semaphore with an initial count.
    Create {
        /// Semaphore name.
        id: SysName,
        /// Initial count.
        count: u32,
    },
    /// P / wait / down: decrement, blocking up to `wait_ms` if zero.
    P {
        /// Semaphore name.
        id: SysName,
        /// Maximum real time to wait, in milliseconds.
        wait_ms: u64,
    },
    /// V / signal / up: increment and wake a waiter.
    V {
        /// Semaphore name.
        id: SysName,
    },
    /// Remove a semaphore.
    Destroy {
        /// Semaphore name.
        id: SysName,
    },
}

/// Replies from the semaphore service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SemReply {
    /// Operation succeeded.
    Ok,
    /// P timed out without acquiring.
    Timeout,
    /// Unknown semaphore.
    NotFound,
    /// Create of an existing semaphore.
    Exists,
}

/// The semaphore service. Created with [`SemaphoreService::install`],
/// registering on [`ports::SEMAPHORES`].
pub struct SemaphoreService {
    counts: Mutex<HashMap<SysName, u32>>,
    cvar: Condvar,
    /// Keeps the node's transport (and its receive loop) alive.
    ratp: Mutex<Option<Arc<RatpNode>>>,
}

impl fmt::Debug for SemaphoreService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SemaphoreService")
            .field("semaphores", &self.counts.lock().len())
            .finish()
    }
}

impl Default for SemaphoreService {
    fn default() -> Self {
        SemaphoreService {
            counts: Mutex::new(HashMap::new()),
            cvar: Condvar::new(),
            ratp: Mutex::new(None),
        }
    }
}

impl SemaphoreService {
    /// Create the service and register it on this node.
    pub fn install(ratp: &Arc<RatpNode>) -> Arc<SemaphoreService> {
        let service = Arc::new(SemaphoreService::default());
        *service.ratp.lock() = Some(Arc::clone(ratp));
        let handler = Arc::clone(&service);
        ratp.register_service(ports::SEMAPHORES, move |req: Request| {
            let reply = match proto::decode::<SemRequest>(&req.payload) {
                Ok(SemRequest::Create { id, count }) => handler.create(id, count),
                Ok(SemRequest::P { id, wait_ms }) => {
                    handler.p(id, Duration::from_millis(wait_ms))
                }
                Ok(SemRequest::V { id }) => handler.v(id),
                Ok(SemRequest::Destroy { id }) => handler.destroy(id),
                Err(_) => SemReply::NotFound,
            };
            proto::encode(&reply)
        });
        service
    }

    /// Create a semaphore.
    pub fn create(&self, id: SysName, count: u32) -> SemReply {
        use std::collections::hash_map::Entry;
        match self.counts.lock().entry(id) {
            Entry::Occupied(_) => SemReply::Exists,
            Entry::Vacant(v) => {
                v.insert(count);
                SemReply::Ok
            }
        }
    }

    /// P operation with a deadline.
    pub fn p(&self, id: SysName, wait: Duration) -> SemReply {
        let deadline = Instant::now() + wait;
        let mut counts = self.counts.lock();
        loop {
            match counts.get_mut(&id) {
                None => return SemReply::NotFound,
                Some(0) => {
                    if self.cvar.wait_until(&mut counts, deadline).timed_out() {
                        return match counts.get_mut(&id) {
                            Some(n) if *n > 0 => {
                                *n -= 1;
                                SemReply::Ok
                            }
                            Some(_) => SemReply::Timeout,
                            None => SemReply::NotFound,
                        };
                    }
                }
                Some(n) => {
                    *n -= 1;
                    return SemReply::Ok;
                }
            }
        }
    }

    /// V operation.
    pub fn v(&self, id: SysName) -> SemReply {
        let mut counts = self.counts.lock();
        match counts.get_mut(&id) {
            None => SemReply::NotFound,
            Some(n) => {
                *n += 1;
                self.cvar.notify_all();
                SemReply::Ok
            }
        }
    }

    /// Destroy a semaphore; blocked P operations will time out.
    pub fn destroy(&self, id: SysName) -> SemReply {
        match self.counts.lock().remove(&id) {
            Some(_) => {
                self.cvar.notify_all();
                SemReply::Ok
            }
            None => SemReply::NotFound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> SysName {
        SysName::from_parts(2, n)
    }

    const T: Duration = Duration::from_millis(40);

    #[test]
    fn create_p_v_cycle() {
        let s = SemaphoreService::default();
        assert_eq!(s.create(id(1), 1), SemReply::Ok);
        assert_eq!(s.create(id(1), 1), SemReply::Exists);
        assert_eq!(s.p(id(1), T), SemReply::Ok);
        assert_eq!(s.p(id(1), T), SemReply::Timeout);
        assert_eq!(s.v(id(1)), SemReply::Ok);
        assert_eq!(s.p(id(1), T), SemReply::Ok);
    }

    #[test]
    fn unknown_semaphore() {
        let s = SemaphoreService::default();
        assert_eq!(s.p(id(9), T), SemReply::NotFound);
        assert_eq!(s.v(id(9)), SemReply::NotFound);
        assert_eq!(s.destroy(id(9)), SemReply::NotFound);
    }

    #[test]
    fn v_wakes_blocked_p() {
        let s = Arc::new(SemaphoreService::default());
        s.create(id(1), 0);
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.p(id(1), Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        s.v(id(1));
        assert_eq!(waiter.join().unwrap(), SemReply::Ok);
    }

    #[test]
    fn counting_behaviour() {
        let s = SemaphoreService::default();
        s.create(id(1), 3);
        assert_eq!(s.p(id(1), T), SemReply::Ok);
        assert_eq!(s.p(id(1), T), SemReply::Ok);
        assert_eq!(s.p(id(1), T), SemReply::Ok);
        assert_eq!(s.p(id(1), T), SemReply::Timeout);
    }

    #[test]
    fn mutual_exclusion_across_threads() {
        let s = Arc::new(SemaphoreService::default());
        s.create(id(1), 1);
        let in_section = Arc::new(Mutex::new(0u32));
        let max_seen = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..6 {
            let s = Arc::clone(&s);
            let sec = Arc::clone(&in_section);
            let max = Arc::clone(&max_seen);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    assert_eq!(s.p(id(1), Duration::from_secs(10)), SemReply::Ok);
                    {
                        let mut n = sec.lock();
                        *n += 1;
                        let mut m = max.lock();
                        *m = (*m).max(*n);
                    }
                    *sec.lock() -= 1;
                    s.v(id(1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*max_seen.lock(), 1);
    }
}
