//! The segment-level lock manager hosted on data servers.
//!
//! "The DSM server allows maintaining (both exclusive and shared) locks
//! on segments and provides other synchronization support" (§4.2).
//! cp-threads (§5.2.1) acquire these locks automatically: "all segments
//! it reads are read-locked, and the segments it updates are
//! write-locked … Locking is performed at the segment-level and not at
//! the object level. Since segments are user defined, this allows user
//! control of the granularity of locking."
//!
//! Locks are owned by *lock owners* (Clouds thread ids), re-entrant, and
//! support shared→exclusive upgrade when the upgrader is the only
//! reader. Blocking acquires wait server-side with a deadline, which is
//! the deadlock-resolution mechanism used by `clouds-consistency`
//! (timeout → abort → retry).

use crate::proto::{self, ports};
use clouds_ra::SysName;
use clouds_ratp::{RatpNode, Request};
use parking_lot::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lock compatibility mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockMode {
    /// Many owners may hold the lock for reading.
    Shared,
    /// A single owner holds the lock for writing.
    Exclusive,
}

/// Outcome of an acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockOutcome {
    /// The lock is now held.
    Granted,
    /// The deadline passed while waiting (possible deadlock; caller
    /// should abort and retry).
    Timeout,
}

/// Requests accepted by the lock service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LockRequest {
    /// Acquire `seg` in `mode` for `owner`, waiting up to `wait_ms`.
    Acquire {
        /// Segment to lock.
        seg: SysName,
        /// Requested mode.
        mode: LockMode,
        /// Lock owner (Clouds thread id).
        owner: u64,
        /// Maximum real time to wait, in milliseconds.
        wait_ms: u64,
    },
    /// Release one hold of `seg` by `owner`.
    Release {
        /// Segment to unlock.
        seg: SysName,
        /// Lock owner.
        owner: u64,
    },
    /// Release every lock held by `owner` (commit/abort cleanup).
    ReleaseAll {
        /// Lock owner.
        owner: u64,
    },
}

/// Replies from the lock service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LockReply {
    /// Acquire result.
    Acquired(LockOutcome),
    /// Release succeeded; count of holds released.
    Released(u32),
    /// Release of a lock that was not held.
    NotHeld,
}

#[derive(Debug, Default)]
struct LockState {
    /// Reader → re-entrancy count.
    readers: HashMap<u64, u32>,
    /// Writer and its re-entrancy count.
    writer: Option<(u64, u32)>,
    /// Owner currently waiting to upgrade shared → exclusive. Two
    /// upgraders deadlock by construction, so the second is refused
    /// immediately instead of timing out (§5.2.1's abort-and-retry,
    /// minus the pointless wait).
    upgrading: Option<u64>,
}

impl LockState {
    fn can_grant(&self, mode: LockMode, owner: u64) -> bool {
        match mode {
            LockMode::Shared => match self.writer {
                Some((w, _)) => w == owner,
                None => true,
            },
            LockMode::Exclusive => {
                let writer_ok = match self.writer {
                    Some((w, _)) => w == owner,
                    None => true,
                };
                let readers_ok = self
                    .readers
                    // lint:allow(hash-iter) — order-free ∀ predicate.
                    .keys()
                    .all(|&r| r == owner);
                writer_ok && readers_ok
            }
        }
    }

    fn grant(&mut self, mode: LockMode, owner: u64) {
        match mode {
            LockMode::Shared => *self.readers.entry(owner).or_insert(0) += 1,
            LockMode::Exclusive => match &mut self.writer {
                Some((_, n)) => *n += 1,
                None => self.writer = Some((owner, 1)),
            },
        }
    }

    fn is_free(&self) -> bool {
        self.readers.is_empty() && self.writer.is_none() && self.upgrading.is_none()
    }
}

/// The lock manager service. Created with [`LockService::install`],
/// registering on [`ports::LOCKS`].
pub struct LockService {
    inner: Mutex<HashMap<SysName, LockState>>,
    cvar: Condvar,
    /// Keeps the node's transport (and its receive loop) alive.
    ratp: Mutex<Option<Arc<RatpNode>>>,
}

impl fmt::Debug for LockService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockService")
            .field("locked_segments", &self.inner.lock().len())
            .finish()
    }
}

impl Default for LockService {
    fn default() -> Self {
        LockService {
            inner: Mutex::new(HashMap::new()),
            cvar: Condvar::new(),
            ratp: Mutex::new(None),
        }
    }
}

impl LockService {
    /// Create the service and register it on this node.
    pub fn install(ratp: &Arc<RatpNode>) -> Arc<LockService> {
        let service = Arc::new(LockService::default());
        *service.ratp.lock() = Some(Arc::clone(ratp));
        let handler = Arc::clone(&service);
        ratp.register_service(ports::LOCKS, move |req: Request| {
            let reply = match proto::decode::<LockRequest>(&req.payload) {
                Ok(LockRequest::Acquire {
                    seg,
                    mode,
                    owner,
                    wait_ms,
                }) => LockReply::Acquired(handler.acquire(
                    seg,
                    mode,
                    owner,
                    Duration::from_millis(wait_ms),
                )),
                Ok(LockRequest::Release { seg, owner }) => match handler.release(seg, owner) {
                    Some(n) => LockReply::Released(n),
                    None => LockReply::NotHeld,
                },
                Ok(LockRequest::ReleaseAll { owner }) => {
                    LockReply::Released(handler.release_all(owner))
                }
                Err(_) => LockReply::NotHeld,
            };
            proto::encode(&reply)
        });
        service
    }

    /// Acquire `seg` in `mode` for `owner`, waiting up to `wait`.
    ///
    /// Re-entrant: an owner may acquire the same lock repeatedly (each
    /// needs a matching release). An owner holding the only shared lock
    /// may upgrade to exclusive.
    pub fn acquire(&self, seg: SysName, mode: LockMode, owner: u64, wait: Duration) -> LockOutcome {
        let deadline = Instant::now() + wait;
        let mut inner = self.inner.lock();
        // An upgrade (exclusive wanted while holding shared) can only be
        // granted once every other reader drains; two concurrent
        // upgraders on one segment therefore deadlock. Refuse the second
        // immediately — it must abort, release its read lock and retry.
        let is_upgrade = mode == LockMode::Exclusive
            && inner
                .get(&seg)
                .is_some_and(|s| s.readers.contains_key(&owner));
        if is_upgrade {
            let state = inner.entry(seg).or_default();
            match state.upgrading {
                Some(other) if other != owner => return LockOutcome::Timeout,
                _ => state.upgrading = Some(owner),
            }
        }
        let outcome = loop {
            let state = inner.entry(seg).or_default();
            if state.can_grant(mode, owner) {
                state.grant(mode, owner);
                break LockOutcome::Granted;
            }
            let now = Instant::now();
            if now >= deadline {
                break LockOutcome::Timeout;
            }
            if self
                .cvar
                .wait_until(&mut inner, deadline)
                .timed_out()
            {
                // One more grant check after the deadline race.
                let state = inner.entry(seg).or_default();
                if state.can_grant(mode, owner) {
                    state.grant(mode, owner);
                    break LockOutcome::Granted;
                }
                break LockOutcome::Timeout;
            }
        };
        if is_upgrade {
            if let Some(state) = inner.get_mut(&seg) {
                if state.upgrading == Some(owner) {
                    state.upgrading = None;
                }
            }
            self.cvar.notify_all();
        }
        outcome
    }

    /// Release one hold of `seg` by `owner` (writer holds release before
    /// reader holds). Returns remaining hold count, or `None` if the
    /// owner held nothing.
    pub fn release(&self, seg: SysName, owner: u64) -> Option<u32> {
        let mut inner = self.inner.lock();
        let state = inner.get_mut(&seg)?;
        let remaining = if let Some((w, n)) = &mut state.writer {
            if *w == owner {
                *n -= 1;
                let rem = *n;
                if rem == 0 {
                    state.writer = None;
                }
                Some(rem)
            } else {
                None
            }
        } else {
            None
        };
        let remaining = remaining.or_else(|| {
            let n = state.readers.get_mut(&owner)?;
            *n -= 1;
            let rem = *n;
            if rem == 0 {
                state.readers.remove(&owner);
            }
            Some(rem)
        });
        if state.is_free() {
            inner.remove(&seg);
        }
        if remaining.is_some() {
            self.cvar.notify_all();
        }
        remaining
    }

    /// Release every hold by `owner`; returns the number of segments
    /// affected.
    pub fn release_all(&self, owner: u64) -> u32 {
        let mut inner = self.inner.lock();
        let mut affected = 0;
        // lint:allow(hash-iter) — retain mutates entries independently;
        // visit order cannot be observed.
        inner.retain(|_, state| {
            let mut touched = false;
            if matches!(state.writer, Some((w, _)) if w == owner) {
                state.writer = None;
                touched = true;
            }
            if state.readers.remove(&owner).is_some() {
                touched = true;
            }
            if touched {
                affected += 1;
            }
            !state.is_free()
        });
        if affected > 0 {
            self.cvar.notify_all();
        }
        affected
    }

    /// Number of segments with at least one hold (diagnostics).
    pub fn locked_count(&self) -> usize {
        self.inner.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Duration = Duration::from_millis(40);

    fn seg(n: u64) -> SysName {
        SysName::from_parts(1, n)
    }

    #[test]
    fn shared_locks_coexist() {
        let l = LockService::default();
        assert_eq!(l.acquire(seg(1), LockMode::Shared, 1, T), LockOutcome::Granted);
        assert_eq!(l.acquire(seg(1), LockMode::Shared, 2, T), LockOutcome::Granted);
        assert_eq!(l.locked_count(), 1);
    }

    #[test]
    fn exclusive_excludes_others() {
        let l = LockService::default();
        assert_eq!(l.acquire(seg(1), LockMode::Exclusive, 1, T), LockOutcome::Granted);
        assert_eq!(l.acquire(seg(1), LockMode::Shared, 2, T), LockOutcome::Timeout);
        assert_eq!(l.acquire(seg(1), LockMode::Exclusive, 2, T), LockOutcome::Timeout);
        // Different segment is independent.
        assert_eq!(l.acquire(seg(2), LockMode::Exclusive, 2, T), LockOutcome::Granted);
    }

    #[test]
    fn reentrancy_and_release_counts() {
        let l = LockService::default();
        l.acquire(seg(1), LockMode::Exclusive, 1, T);
        l.acquire(seg(1), LockMode::Exclusive, 1, T);
        assert_eq!(l.release(seg(1), 1), Some(1));
        // Still held: others blocked.
        assert_eq!(l.acquire(seg(1), LockMode::Shared, 2, T), LockOutcome::Timeout);
        assert_eq!(l.release(seg(1), 1), Some(0));
        assert_eq!(l.acquire(seg(1), LockMode::Shared, 2, T), LockOutcome::Granted);
    }

    #[test]
    fn sole_reader_can_upgrade() {
        let l = LockService::default();
        l.acquire(seg(1), LockMode::Shared, 1, T);
        assert_eq!(l.acquire(seg(1), LockMode::Exclusive, 1, T), LockOutcome::Granted);
        // With a second reader, upgrade fails.
        let l2 = LockService::default();
        l2.acquire(seg(1), LockMode::Shared, 1, T);
        l2.acquire(seg(1), LockMode::Shared, 2, T);
        assert_eq!(l2.acquire(seg(1), LockMode::Exclusive, 1, T), LockOutcome::Timeout);
    }

    #[test]
    fn writer_may_also_read() {
        let l = LockService::default();
        l.acquire(seg(1), LockMode::Exclusive, 1, T);
        assert_eq!(l.acquire(seg(1), LockMode::Shared, 1, T), LockOutcome::Granted);
    }

    #[test]
    fn release_not_held_is_none() {
        let l = LockService::default();
        assert_eq!(l.release(seg(1), 1), None);
        l.acquire(seg(1), LockMode::Shared, 1, T);
        assert_eq!(l.release(seg(1), 2), None);
    }

    #[test]
    fn blocked_acquire_wakes_on_release() {
        let l = Arc::new(LockService::default());
        l.acquire(seg(1), LockMode::Exclusive, 1, Duration::ZERO);
        let l2 = Arc::clone(&l);
        let waiter = std::thread::spawn(move || {
            l2.acquire(seg(1), LockMode::Exclusive, 2, Duration::from_secs(5))
        });
        std::thread::sleep(Duration::from_millis(30));
        l.release(seg(1), 1);
        assert_eq!(waiter.join().unwrap(), LockOutcome::Granted);
    }

    #[test]
    fn release_all_frees_everything() {
        let l = LockService::default();
        l.acquire(seg(1), LockMode::Exclusive, 1, T);
        l.acquire(seg(2), LockMode::Shared, 1, T);
        l.acquire(seg(3), LockMode::Shared, 2, T);
        assert_eq!(l.release_all(1), 2);
        assert_eq!(l.acquire(seg(1), LockMode::Exclusive, 2, T), LockOutcome::Granted);
        assert_eq!(l.acquire(seg(2), LockMode::Exclusive, 2, T), LockOutcome::Granted);
        assert_eq!(l.release_all(99), 0);
    }

    #[test]
    fn deadlock_times_out() {
        // Two owners each hold one lock and want the other: the paper's
        // timeout-based deadlock resolution must fire.
        let l = Arc::new(LockService::default());
        l.acquire(seg(1), LockMode::Exclusive, 1, T);
        l.acquire(seg(2), LockMode::Exclusive, 2, T);
        let l1 = Arc::clone(&l);
        let t1 = std::thread::spawn(move || l1.acquire(seg(2), LockMode::Exclusive, 1, T));
        let l2 = Arc::clone(&l);
        let t2 = std::thread::spawn(move || l2.acquire(seg(1), LockMode::Exclusive, 2, T));
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(r1 == LockOutcome::Timeout || r2 == LockOutcome::Timeout);
    }
}
