//! `clouds-obs` — virtual-time observability for the Clouds reproduction.
//!
//! The paper evaluates Clouds by instrumenting the invocation, paging and
//! commit paths and reporting per-layer costs (§4.3). This crate is the
//! shared substrate for that instrumentation: a structured event layer
//! (spans + instants) and a metrics registry (counters + latency
//! histograms), both stamped with **virtual time** from the node's
//! [`VirtualClock`] rather than wall time.
//!
//! Because every timestamp is virtual, two runs of the same seeded
//! workload produce the *same* event stream — the property the chaos
//! harness asserts as a determinism invariant (see
//! [`TraceSink::canonical_jsonl`]).
//!
//! Pieces:
//!
//! * [`TraceSink`] — a bounded ring buffer of [`TraceEvent`]s shared by
//!   every node of a cluster; serializes to JSONL (one event per line)
//!   and to the Chrome `trace_event` timeline format
//!   (`chrome://tracing` / Perfetto).
//! * [`MetricsRegistry`] — named [`Counter`]s and log₂-bucketed
//!   [`Histogram`]s of virtual-time durations, with a deterministic
//!   [`MetricsRegistry::snapshot`].
//! * [`NodeObs`] — the per-node handle bundling node id, clock,
//!   registry and sink; layers call [`NodeObs::instant`] /
//!   [`NodeObs::span`] and cache [`Counter`] handles at construction.
//!
//! No external dependencies and no wall-clock reads: the crate is pure
//! bookkeeping over `clouds-simnet`'s virtual time.

use clouds_simnet::{VirtualClock, Vt};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default ring capacity of a [`TraceSink`] (events, not bytes).
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// One structured event: an instant (`dur == None`) or a completed span.
///
/// `layer` and `name` are static identifiers (`"dsm.client"`,
/// `"fetch_pages"`); `args` is a short preformatted `key=value` detail
/// string. Everything in an event must be derived from virtual time and
/// protocol state — never from wall clocks or addresses — so that
/// same-seed runs serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp (span start for spans).
    pub ts: Vt,
    /// Span duration; `None` for instant events.
    pub dur: Option<Vt>,
    /// Simulated node the event happened on.
    pub node: u64,
    /// Subsystem: `sched`, `ratp`, `dsm.client`, `dsm.server`, `2pc`,
    /// `pet`, `invoke`.
    pub layer: &'static str,
    /// Event name within the layer.
    pub name: &'static str,
    /// Short `key=value` detail string (may be empty).
    pub args: String,
}

impl TraceEvent {
    /// Total order used for canonical serialization: `(ts, node, layer,
    /// name, args, dur)`. Thread interleaving may vary the *record*
    /// order between runs, but if the event set and virtual timestamps
    /// are deterministic, the canonical order is too.
    fn canonical_key(&self) -> (u64, u64, &'static str, &'static str, &str, u64) {
        (
            self.ts.as_nanos(),
            self.node,
            self.layer,
            self.name,
            &self.args,
            self.dur.map_or(0, Vt::as_nanos),
        )
    }

    /// One JSON object, fixed key order, no whitespace.
    fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"ts\":{}", self.ts.as_nanos());
        if let Some(d) = self.dur {
            let _ = write!(s, ",\"dur\":{}", d.as_nanos());
        }
        let _ = write!(
            s,
            ",\"node\":{},\"layer\":\"{}\",\"name\":\"{}\",\"args\":\"{}\"}}",
            self.node,
            escape(self.layer),
            escape(self.name),
            escape(&self.args)
        );
        s
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Bounded ring buffer of trace events, shared by all nodes of a
/// cluster. When full, the **oldest** event is dropped (and counted) so
/// the tail of the timeline survives; size the capacity to the workload
/// when full streams matter (the determinism tests do).
pub struct TraceSink {
    inner: Mutex<std::collections::VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceSink {
    /// A sink holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use a tiny sink to effectively
    /// disable retention, but the ring must exist).
    pub fn new(capacity: usize) -> TraceSink {
        assert!(capacity > 0, "trace sink needs at least one slot");
        TraceSink {
            inner: Mutex::new(std::collections::VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&self, ev: TraceEvent) {
        let mut ring = self.inner.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the retained events in record order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Retained events in canonical order: sorted by
    /// `(ts, node, layer, name, args, dur)`. Record order depends on OS
    /// thread interleaving; canonical order does not.
    pub fn canonical(&self) -> Vec<TraceEvent> {
        let mut events = self.snapshot();
        events.sort_by(|a, b| a.canonical_key().cmp(&b.canonical_key()));
        events
    }

    /// Canonical JSONL: one event per line, fixed key order — the
    /// byte-comparable form the determinism invariant checks.
    pub fn canonical_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.canonical() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON (load in `chrome://tracing` or
    /// [ui.perfetto.dev](https://ui.perfetto.dev)): spans become `"X"`
    /// (complete) events, instants become `"i"`; `pid` is the simulated
    /// node, `tid` the layer, timestamps are virtual microseconds.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let events = self.canonical();
        for (i, ev) in events.iter().enumerate() {
            let ts_us = ev.ts.as_nanos() as f64 / 1_000.0;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},",
                escape(ev.name),
                escape(ev.layer),
                if ev.dur.is_some() { "X" } else { "i" },
                ts_us
            );
            if let Some(d) = ev.dur {
                let _ = write!(out, "\"dur\":{:.3},", d.as_nanos() as f64 / 1_000.0);
            } else {
                out.push_str("\"s\":\"t\",");
            }
            let _ = write!(
                out,
                "\"pid\":{},\"tid\":\"{}\",\"args\":{{\"detail\":\"{}\"}}}}",
                ev.node,
                escape(ev.layer),
                escape(&ev.args)
            );
            out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
        }
        out.push_str("]}\n");
        out
    }

    /// Write the trace to `path`: Chrome format when the extension is
    /// `.json`, canonical JSONL otherwise.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        let body = if path.extension().is_some_and(|e| e == "json") {
            self.chrome_trace()
        } else {
            self.canonical_jsonl()
        };
        std::fs::write(path, body)
    }
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::new(DEFAULT_SINK_CAPACITY)
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Handles are cheap `Arc`s; hot
/// paths cache them at construction instead of re-resolving by name.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets in a [`Histogram`] (covers the full `u64`
/// nanosecond range).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Lock-free histogram of virtual-time durations in log₂ buckets:
/// bucket `k` counts durations `d` with `2^k ≤ d.as_nanos() < 2^(k+1)`
/// (bucket 0 also counts zero and one). Quantiles are bucket upper
/// bounds — ~2× resolution, plenty for per-layer latency breakdowns.
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("mean", &s.mean())
            .field("p99", &s.p99)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros()) as usize - 1
    }
}

impl Histogram {
    /// Record one duration.
    pub fn record(&self, d: Vt) {
        let ns = d.as_nanos();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time summary. Under concurrent writers each field is
    /// individually atomic; the summary is consistent once writers have
    /// quiesced (every recorded value appears in exactly one bucket and
    /// once in count/sum).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> Vt {
            if count == 0 {
                return Vt::ZERO;
            }
            let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (k, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Exclusive upper bound of bucket k, saturating at
                    // the top bucket.
                    return Vt::from_nanos(if k >= 63 { u64::MAX } else { 1u64 << (k + 1) });
                }
            }
            Vt::from_nanos(u64::MAX)
        };
        let min = self.min_ns.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: Vt::from_nanos(self.sum_ns.load(Ordering::Relaxed)),
            min: if min == u64::MAX { Vt::ZERO } else { Vt::from_nanos(min) },
            max: Vt::from_nanos(self.max_ns.load(Ordering::Relaxed)),
            p50: quantile(0.50),
            p99: quantile(0.99),
        }
    }
}

/// Snapshot of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: Vt,
    /// Smallest sample ([`Vt::ZERO`] when empty).
    pub min: Vt,
    /// Largest sample.
    pub max: Vt,
    /// Median (bucket upper bound).
    pub p50: Vt,
    /// 99th percentile (bucket upper bound).
    pub p99: Vt,
}

impl HistogramSummary {
    /// Mean sample value ([`Vt::ZERO`] when empty).
    pub fn mean(&self) -> Vt {
        if self.count == 0 {
            Vt::ZERO
        } else {
            Vt::from_nanos(self.sum.as_nanos() / self.count)
        }
    }
}

/// Named counters and histograms for one node. Lookup by name is
/// mutex-guarded (cold); returned handles are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// Deterministically ordered dump of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Current value of counter `name` (0 if never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.lock().get(name).map_or(0, |c| c.get())
    }

    /// Summary of histogram `name` (empty summary if never created).
    pub fn histogram_summary(&self, name: &str) -> HistogramSummary {
        self.histograms
            .lock()
            .get(name)
            .map(|h| h.summary())
            .unwrap_or(HistogramSummary {
                count: 0,
                sum: Vt::ZERO,
                min: Vt::ZERO,
                max: Vt::ZERO,
                p50: Vt::ZERO,
                p99: Vt::ZERO,
            })
    }

    /// Name-sorted snapshot of everything registered.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Per-node handle
// ---------------------------------------------------------------------------

/// The per-node observability handle: node id + virtual clock +
/// [`MetricsRegistry`] + shared [`TraceSink`]. Every instrumented layer
/// reaches its `NodeObs` through the transport node it already holds.
pub struct NodeObs {
    node: u64,
    clock: Arc<VirtualClock>,
    registry: Arc<MetricsRegistry>,
    sink: Arc<TraceSink>,
}

impl std::fmt::Debug for NodeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeObs").field("node", &self.node).finish()
    }
}

impl NodeObs {
    /// A handle with an explicit registry and (cluster-shared) sink.
    pub fn new(
        node: u64,
        clock: Arc<VirtualClock>,
        registry: Arc<MetricsRegistry>,
        sink: Arc<TraceSink>,
    ) -> Arc<NodeObs> {
        Arc::new(NodeObs {
            node,
            clock,
            registry,
            sink,
        })
    }

    /// A standalone handle with a fresh registry and private sink —
    /// what a node constructed outside a cluster uses.
    pub fn solo(node: u64, clock: Arc<VirtualClock>) -> Arc<NodeObs> {
        NodeObs::new(
            node,
            clock,
            Arc::new(MetricsRegistry::new()),
            Arc::new(TraceSink::default()),
        )
    }

    /// Simulated node id.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// The node's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The node's metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The trace sink events go to (shared across a cluster).
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// Shorthand for [`MetricsRegistry::counter`].
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Shorthand for [`MetricsRegistry::histogram`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// Record an instant event at the current virtual time.
    pub fn instant(&self, layer: &'static str, name: &'static str, args: String) {
        self.sink.record(TraceEvent {
            ts: self.clock.now(),
            dur: None,
            node: self.node,
            layer,
            name,
            args,
        });
    }

    /// Open a span starting at the current virtual time; it records on
    /// [`Span::finish`] (or drop) with the elapsed virtual duration.
    pub fn span(self: &Arc<Self>, layer: &'static str, name: &'static str) -> Span {
        Span {
            obs: Arc::clone(self),
            layer,
            name,
            start: self.clock.now(),
            args: String::new(),
            histogram: None,
            done: false,
        }
    }
}

/// An open span: records a completed [`TraceEvent`] (and optionally a
/// [`Histogram`] sample) covering `start..now` when finished or dropped.
pub struct Span {
    obs: Arc<NodeObs>,
    layer: &'static str,
    name: &'static str,
    start: Vt,
    args: String,
    histogram: Option<Arc<Histogram>>,
    done: bool,
}

impl Span {
    /// Attach a detail string (shown in `args`).
    pub fn set_args(&mut self, args: String) {
        self.args = args;
    }

    /// Also record the span's duration into `histogram` on finish.
    pub fn with_histogram(mut self, histogram: Arc<Histogram>) -> Span {
        self.histogram = Some(histogram);
        self
    }

    /// Span start (virtual time).
    pub fn start(&self) -> Vt {
        self.start
    }

    fn record(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let end = self.obs.clock.now();
        let dur = end.saturating_sub(self.start);
        if let Some(h) = &self.histogram {
            h.record(dur);
        }
        self.obs.sink.record(TraceEvent {
            ts: self.start,
            dur: Some(dur),
            node: self.obs.node,
            layer: self.layer,
            name: self.name,
            args: std::mem::take(&mut self.args),
        });
    }

    /// Close the span now (idempotent; drop does the same).
    pub fn finish(mut self) {
        self.record();
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, node: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts: Vt::from_nanos(ts),
            dur: None,
            node,
            layer: "test",
            name,
            args: String::new(),
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let sink = TraceSink::new(3);
        for i in 0..5 {
            sink.record(ev(i, 1, "e"));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let kept: Vec<u64> = sink.snapshot().iter().map(|e| e.ts.as_nanos()).collect();
        assert_eq!(kept, vec![2, 3, 4], "tail of the timeline survives");
    }

    #[test]
    fn canonical_order_is_interleaving_independent() {
        let a = TraceSink::new(16);
        let b = TraceSink::new(16);
        // Same event set, different record order.
        let events = [ev(5, 2, "x"), ev(5, 1, "x"), ev(1, 9, "z"), ev(5, 1, "a")];
        for e in &events {
            a.record(e.clone());
        }
        for e in events.iter().rev() {
            b.record(e.clone());
        }
        assert_ne!(a.snapshot(), b.snapshot());
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical_jsonl(), b.canonical_jsonl());
        // ts dominates, then node, then name.
        let order: Vec<(u64, u64, &str)> = a
            .canonical()
            .iter()
            .map(|e| (e.ts.as_nanos(), e.node, e.name))
            .collect();
        assert_eq!(order, vec![(1, 9, "z"), (5, 1, "a"), (5, 1, "x"), (5, 2, "x")]);
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let sink = TraceSink::new(4);
        sink.record(TraceEvent {
            ts: Vt::from_nanos(7),
            dur: Some(Vt::from_nanos(3)),
            node: 42,
            layer: "dsm.client",
            name: "fetch_pages",
            args: "seg=\"s\"\n".to_string(),
        });
        let line = sink.canonical_jsonl();
        assert_eq!(
            line,
            "{\"ts\":7,\"dur\":3,\"node\":42,\"layer\":\"dsm.client\",\"name\":\"fetch_pages\",\"args\":\"seg=\\\"s\\\"\\n\"}\n"
        );
    }

    #[test]
    fn chrome_trace_is_wellformed_json_shape() {
        let sink = TraceSink::new(4);
        sink.record(ev(1_000, 1, "i"));
        sink.record(TraceEvent {
            ts: Vt::from_nanos(2_000),
            dur: Some(Vt::from_nanos(500)),
            node: 1,
            layer: "test",
            name: "s",
            args: String::new(),
        });
        let body = sink.chrome_trace();
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.trim_end().ends_with("]}"));
        assert!(body.contains("\"ph\":\"i\""));
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.contains("\"dur\":0.500"));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);

        let h = Histogram::default();
        for us in [100u64, 200, 300, 400, 10_000] {
            h.record(Vt::from_micros(us));
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, Vt::from_micros(100));
        assert_eq!(s.max, Vt::from_micros(10_000));
        assert_eq!(s.mean(), Vt::from_micros(2200));
        // p50 lands in the bucket holding 200µs and 300µs values.
        assert!(s.p50 >= Vt::from_micros(200) && s.p50 <= Vt::from_micros(600));
        assert!(s.p99 >= Vt::from_micros(10_000));
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("x"), 3);
        assert_eq!(reg.counter_value("missing"), 0);
    }

    #[test]
    fn registry_snapshot_consistent_under_concurrent_writers() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("ops");
                let h = reg.histogram("lat");
                for i in 0..1000u64 {
                    c.inc();
                    h.record(Vt::from_nanos(t * 1000 + i));
                    // Interleave snapshots with writes: must never panic
                    // or observe impossible totals.
                    if i % 100 == 0 {
                        let snap = reg.snapshot();
                        for (_, v) in &snap.counters {
                            assert!(*v <= 8000);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("ops".to_string(), 8000)]);
        let (_, lat) = &snap.histograms[0];
        assert_eq!(lat.count, 8000);
        // Every sample landed in exactly one bucket.
        let h = reg.histogram("lat");
        let bucket_total: u64 = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(bucket_total, 8000);
    }

    #[test]
    fn spans_record_virtual_durations() {
        let clock = Arc::new(VirtualClock::new());
        let obs = NodeObs::solo(7, Arc::clone(&clock));
        let hist = obs.histogram("span.lat");
        {
            let mut span = obs.span("test", "work").with_histogram(Arc::clone(&hist));
            span.set_args("k=1".to_string());
            clock.charge(Vt::from_micros(250));
            span.finish();
        }
        obs.instant("test", "tick", String::new());
        let events = obs.sink().canonical();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "work");
        assert_eq!(events[0].dur, Some(Vt::from_micros(250)));
        assert_eq!(events[0].args, "k=1");
        assert_eq!(events[1].name, "tick");
        assert_eq!(events[1].ts, Vt::from_micros(250));
        assert_eq!(hist.summary().count, 1);
        assert_eq!(hist.summary().max, Vt::from_micros(250));
    }
}
