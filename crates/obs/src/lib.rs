//! `clouds-obs` — virtual-time observability for the Clouds reproduction.
//!
//! The paper evaluates Clouds by instrumenting the invocation, paging and
//! commit paths and reporting per-layer costs (§4.3). This crate is the
//! shared substrate for that instrumentation: a structured event layer
//! (spans + instants) and a metrics registry (counters + latency
//! histograms), both stamped with **virtual time** from the node's
//! [`VirtualClock`] rather than wall time.
//!
//! Because every timestamp is virtual, two runs of the same seeded
//! workload produce the *same* event stream — the property the chaos
//! harness asserts as a determinism invariant (see
//! [`TraceSink::canonical_jsonl`]).
//!
//! Pieces:
//!
//! * [`TraceSink`] — a bounded ring buffer of [`TraceEvent`]s shared by
//!   every node of a cluster; serializes to JSONL (one event per line)
//!   and to the Chrome `trace_event` timeline format
//!   (`chrome://tracing` / Perfetto).
//! * [`MetricsRegistry`] — named [`Counter`]s and log₂-bucketed
//!   [`Histogram`]s of virtual-time durations, with a deterministic
//!   [`MetricsRegistry::snapshot`].
//! * [`NodeObs`] — the per-node handle bundling node id, clock,
//!   registry and sink; layers call [`NodeObs::instant`] /
//!   [`NodeObs::span`] and cache [`Counter`] handles at construction.
//!
//! No external dependencies and no wall-clock reads: the crate is pure
//! bookkeeping over `clouds-simnet`'s virtual time.

#![forbid(unsafe_code)]

use clouds_simnet::{VirtualClock, Vt};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub mod causal;

/// Default ring capacity of a [`TraceSink`] (events, not bytes).
pub const DEFAULT_SINK_CAPACITY: usize = 1 << 16;

/// Environment variable overriding the cluster trace-ring capacity.
pub const TRACE_CAP_ENV: &str = "CLOUDS_TRACE_CAP";

// ---------------------------------------------------------------------------
// Span contexts (Dapper-style causal identity)
// ---------------------------------------------------------------------------

/// Causal identity of a span, carried across RaTP calls so receiver-side
/// spans attach to their true parents.
///
/// `trace_id == 0` means "not traced" — the zero context is the absent
/// context. A root span has `parent_id == 0`. All ids are derived by
/// FNV-1a hashing deterministic inputs (virtual time, protocol state),
/// never from wall clocks or global atomics, so same-seed runs allocate
/// identical ids (the determinism invariant byte-compares traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SpanContext {
    /// Identifies one end-to-end causal tree (0 = untraced).
    pub trace_id: u64,
    /// This span's id within the trace.
    pub span_id: u64,
    /// The parent span's id (0 = root).
    pub parent_id: u64,
}

impl SpanContext {
    /// The absent context.
    pub const NONE: SpanContext = SpanContext {
        trace_id: 0,
        span_id: 0,
        parent_id: 0,
    };

    /// True when this context names a real trace.
    pub fn is_some(&self) -> bool {
        self.trace_id != 0
    }
}

thread_local! {
    /// Stack of installed contexts; the top is the ambient parent for
    /// new spans and instants on this thread.
    static CTX_STACK: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
}

/// The ambient span context on this thread, if any.
pub fn current_ctx() -> Option<SpanContext> {
    CTX_STACK.with(|s| s.borrow().last().copied())
}

/// Install `ctx` as the ambient context until the guard drops.
///
/// Used on the receiving side of a traced RaTP message: the handler
/// thread installs the wire context so the spans it opens become
/// children of the remote caller's span.
pub fn install_ctx(ctx: SpanContext) -> CtxGuard {
    CTX_STACK.with(|s| s.borrow_mut().push(ctx));
    CtxGuard {
        ctx,
        _not_send: std::marker::PhantomData,
    }
}

/// Guard for an installed context; pops it on drop.
pub struct CtxGuard {
    ctx: SpanContext,
    // The guard pops a thread-local: it must drop on the installing
    // thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX_STACK.with(|s| {
            let mut v = s.borrow_mut();
            if let Some(i) = v.iter().rposition(|c| *c == self.ctx) {
                v.remove(i);
            }
        });
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a-64 over a mixed word/text key, never returning 0 (0 is the
/// "absent id" sentinel). Deterministic across runs and platforms.
pub fn derive_id(words: &[u64], text: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for w in words {
        h = fnv_step(h, &w.to_le_bytes());
    }
    for t in text {
        h = fnv_step(h, t.as_bytes());
        // Separator so ("ab","c") and ("a","bc") differ.
        h = fnv_step(h, &[0xFF]);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// Trace id of the `seq`-th root started by thread `thread_id` —
/// deterministic because thread ids and root ordering per thread are.
pub fn derive_trace_id(thread_id: u64, seq: u64) -> u64 {
    derive_id(&[thread_id, seq], &["trace-root"])
}

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// One structured event: an instant (`dur == None`) or a completed span.
///
/// `layer` and `name` are static identifiers (`"dsm.client"`,
/// `"fetch_pages"`); `args` is a short preformatted `key=value` detail
/// string. Everything in an event must be derived from virtual time and
/// protocol state — never from wall clocks or addresses — so that
/// same-seed runs serialize byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual timestamp (span start for spans).
    pub ts: Vt,
    /// Span duration; `None` for instant events.
    pub dur: Option<Vt>,
    /// Simulated node the event happened on.
    pub node: u64,
    /// Subsystem: `sched`, `ratp`, `dsm.client`, `dsm.server`, `2pc`,
    /// `pet`, `invoke`.
    pub layer: &'static str,
    /// Event name within the layer.
    pub name: &'static str,
    /// Causal identity ([`SpanContext::NONE`] when untraced). Spans
    /// carry their own `span_id`; instants carry `span_id == 0` with
    /// `parent_id` naming the ambient span they annotate.
    pub ctx: SpanContext,
    /// Short `key=value` detail string (may be empty).
    pub args: String,
}

impl TraceEvent {
    /// Total order used for canonical serialization: `(ts, node, layer,
    /// name, args, dur, ctx)`. Thread interleaving may vary the *record*
    /// order between runs, but if the event set and virtual timestamps
    /// are deterministic, the canonical order is too.
    #[allow(clippy::type_complexity)]
    fn canonical_key(
        &self,
    ) -> (u64, u64, &'static str, &'static str, &str, u64, (u64, u64, u64)) {
        (
            self.ts.as_nanos(),
            self.node,
            self.layer,
            self.name,
            &self.args,
            self.dur.map_or(0, Vt::as_nanos),
            (self.ctx.trace_id, self.ctx.span_id, self.ctx.parent_id),
        )
    }

    /// One JSON object, fixed key order, no whitespace. Traced events
    /// add `"trace"`, `"span"`, `"parent"` between `name` and `args`;
    /// untraced events serialize exactly as before the causal layer.
    fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(s, "{{\"ts\":{}", self.ts.as_nanos());
        if let Some(d) = self.dur {
            let _ = write!(s, ",\"dur\":{}", d.as_nanos());
        }
        let _ = write!(
            s,
            ",\"node\":{},\"layer\":\"{}\",\"name\":\"{}\"",
            self.node,
            escape(self.layer),
            escape(self.name),
        );
        if self.ctx.is_some() {
            let _ = write!(
                s,
                ",\"trace\":{},\"span\":{},\"parent\":{}",
                self.ctx.trace_id, self.ctx.span_id, self.ctx.parent_id
            );
        }
        let _ = write!(s, ",\"args\":\"{}\"}}", escape(&self.args));
        s
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Bounded ring buffer of trace events, shared by all nodes of a
/// cluster. When full, the **oldest** event is dropped (and counted) so
/// the tail of the timeline survives; size the capacity to the workload
/// when full streams matter (the determinism tests do).
pub struct TraceSink {
    inner: Mutex<std::collections::VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceSink {
    /// A sink holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (use a tiny sink to effectively
    /// disable retention, but the ring must exist).
    pub fn new(capacity: usize) -> TraceSink {
        assert!(capacity > 0, "trace sink needs at least one slot");
        TraceSink {
            inner: Mutex::new(std::collections::VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&self, ev: TraceEvent) {
        let mut ring = self.inner.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the retained events in record order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Retained events in canonical order: sorted by
    /// `(ts, node, layer, name, args, dur)`. Record order depends on OS
    /// thread interleaving; canonical order does not.
    pub fn canonical(&self) -> Vec<TraceEvent> {
        let mut events = self.snapshot();
        events.sort_by(|a, b| a.canonical_key().cmp(&b.canonical_key()));
        events
    }

    /// Canonical JSONL: one event per line, fixed key order — the
    /// byte-comparable form the determinism invariant checks.
    pub fn canonical_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.canonical() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON (load in `chrome://tracing` or
    /// [ui.perfetto.dev](https://ui.perfetto.dev)): spans become `"X"`
    /// (complete) events, instants become `"i"`; `pid` is the simulated
    /// node, `tid` the layer, timestamps are virtual microseconds.
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let events = self.canonical();
        for (i, ev) in events.iter().enumerate() {
            let ts_us = ev.ts.as_nanos() as f64 / 1_000.0;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},",
                escape(ev.name),
                escape(ev.layer),
                if ev.dur.is_some() { "X" } else { "i" },
                ts_us
            );
            if let Some(d) = ev.dur {
                let _ = write!(out, "\"dur\":{:.3},", d.as_nanos() as f64 / 1_000.0);
            } else {
                out.push_str("\"s\":\"t\",");
            }
            let _ = write!(
                out,
                "\"pid\":{},\"tid\":\"{}\",\"args\":{{\"detail\":\"{}\"}}}}",
                ev.node,
                escape(ev.layer),
                escape(&ev.args)
            );
            out.push_str(if i + 1 == events.len() { "\n" } else { ",\n" });
        }
        out.push_str("]}\n");
        out
    }

    /// Write the trace to `path`: Chrome format when the extension is
    /// `.json`, canonical JSONL otherwise.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        let body = if path.extension().is_some_and(|e| e == "json") {
            self.chrome_trace()
        } else {
            self.canonical_jsonl()
        };
        std::fs::write(path, body)
    }
}

impl Default for TraceSink {
    fn default() -> TraceSink {
        TraceSink::new(DEFAULT_SINK_CAPACITY)
    }
}

impl TraceSink {
    /// A sink whose capacity honours the `CLOUDS_TRACE_CAP` environment
    /// variable (events; decimal), falling back to
    /// [`DEFAULT_SINK_CAPACITY`] when unset, unparsable, or zero.
    pub fn from_env() -> TraceSink {
        let cap = std::env::var(TRACE_CAP_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_SINK_CAPACITY);
        TraceSink::new(cap)
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Handles are cheap `Arc`s; hot
/// paths cache them at construction instead of re-resolving by name.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// log₂ of the linear sub-buckets per major (log₂) bucket.
const HIST_SUB_BITS: u32 = 5;

/// Linear sub-buckets per major bucket: each power-of-two range
/// `[2^k, 2^(k+1))` is split into 32 equal-width slots.
pub const HIST_SUB_BUCKETS: usize = 1 << HIST_SUB_BITS;

/// Total buckets in a [`Histogram`]: 32 exact slots for values below
/// 32 ns, then 32 linear sub-buckets for each of the 59 major log₂
/// ranges `[2^5, 2^64)` — HDR-style resolution over the full `u64`
/// nanosecond range.
pub const HISTOGRAM_BUCKETS: usize = HIST_SUB_BUCKETS + (64 - HIST_SUB_BITS as usize) * HIST_SUB_BUCKETS;

/// Worst-case relative error of a reported quantile: a bucket spans
/// `2^k / 32` starting at `≥ 2^k · (32 + s) / 32`, so the exclusive
/// upper bound we report overshoots the true value by at most 1/32
/// (values below 32 ns are held in exact 1 ns slots).
pub const HIST_RELATIVE_ERROR: f64 = 1.0 / HIST_SUB_BUCKETS as f64;

/// Lock-free HDR-style histogram of virtual-time durations: log₂ major
/// buckets × 32 linear sub-buckets, so every reported quantile is
/// within [`HIST_RELATIVE_ERROR`] (≈3.1%) of the true sample — tight
/// enough to gate p999 SLOs on, while staying plain relaxed atomics on
/// the record path. Quantiles are bucket upper bounds; values below
/// 32 ns are exact.
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("mean", &s.mean())
            .field("p99", &s.p99)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_index(ns: u64) -> usize {
    if ns < HIST_SUB_BUCKETS as u64 {
        return ns as usize;
    }
    let h = 63 - u64::from(ns.leading_zeros()); // highest set bit, ≥ 5
    let major = h - u64::from(HIST_SUB_BITS);
    let sub = (ns >> (h - u64::from(HIST_SUB_BITS))) - HIST_SUB_BUCKETS as u64;
    (HIST_SUB_BUCKETS as u64 + major * HIST_SUB_BUCKETS as u64 + sub) as usize
}

/// Exclusive upper bound of bucket `i`, saturating at `u64::MAX`.
fn bucket_upper_bound(i: usize) -> u64 {
    if i < HIST_SUB_BUCKETS {
        return i as u64 + 1;
    }
    let major = i / HIST_SUB_BUCKETS - 1;
    let sub = (i % HIST_SUB_BUCKETS) as u128;
    let bound = (HIST_SUB_BUCKETS as u128 + sub + 1) << major;
    bound.min(u128::from(u64::MAX)) as u64
}

/// Exact-count quantile over a loaded bucket vector: the exclusive
/// upper bound of the bucket holding the rank-`⌈q·count⌉` sample.
fn quantile_of(buckets: &[u64], count: u64, q: f64) -> Vt {
    if count == 0 {
        return Vt::ZERO;
    }
    let rank = ((count as f64 * q).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (k, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return Vt::from_nanos(bucket_upper_bound(k));
        }
    }
    Vt::from_nanos(u64::MAX)
}

impl Histogram {
    /// Record one duration.
    pub fn record(&self, d: Vt) {
        let ns = d.as_nanos();
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Exact-count quantile `q ∈ [0, 1]`: walks the live buckets and
    /// returns the exclusive upper bound of the one holding the
    /// rank-`⌈q·count⌉` sample — within [`HIST_RELATIVE_ERROR`] of the
    /// true sample value. [`Vt::ZERO`] when empty.
    pub fn quantile(&self, q: f64) -> Vt {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_of(&buckets, count, q)
    }

    /// Fold `other`'s samples into `self` (bucket-wise addition, so
    /// `merge_from` then [`Histogram::summary`] is equivalent to having
    /// recorded both sample sets into one histogram). Used to combine
    /// per-node latency histograms into a cluster-wide SLO view.
    pub fn merge_from(&self, other: &Histogram) {
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min_ns
            .fetch_min(other.min_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Point-in-time summary. Under concurrent writers each field is
    /// individually atomic; the summary is consistent once writers have
    /// quiesced (every recorded value appears in exactly one bucket and
    /// once in count/sum).
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let min = self.min_ns.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: Vt::from_nanos(self.sum_ns.load(Ordering::Relaxed)),
            min: if min == u64::MAX { Vt::ZERO } else { Vt::from_nanos(min) },
            max: Vt::from_nanos(self.max_ns.load(Ordering::Relaxed)),
            p50: quantile_of(&buckets, count, 0.50),
            p90: quantile_of(&buckets, count, 0.90),
            p99: quantile_of(&buckets, count, 0.99),
            p999: quantile_of(&buckets, count, 0.999),
        }
    }
}

/// Snapshot of one [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: Vt,
    /// Smallest sample ([`Vt::ZERO`] when empty).
    pub min: Vt,
    /// Largest sample.
    pub max: Vt,
    /// Median (bucket upper bound).
    pub p50: Vt,
    /// 90th percentile (bucket upper bound).
    pub p90: Vt,
    /// 99th percentile (bucket upper bound).
    pub p99: Vt,
    /// 99.9th percentile (bucket upper bound) — the SLO tail.
    pub p999: Vt,
}

impl HistogramSummary {
    /// Mean sample value ([`Vt::ZERO`] when empty).
    pub fn mean(&self) -> Vt {
        match self.sum.as_nanos().checked_div(self.count) {
            Some(mean) => Vt::from_nanos(mean),
            None => Vt::ZERO,
        }
    }
}

/// Counter bumped once per read of a never-registered metric name —
/// the loud alternative to silently minting a zero (see
/// [`MetricsRegistry::counter_value`]).
pub const REGISTRY_MISSES: &str = "obs.registry.misses";

/// Named counters and histograms for one node. Lookup by name is
/// mutex-guarded (cold); returned handles are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    /// Never-registered names already warned about (one warning per
    /// name per registry; every miss still bumps [`REGISTRY_MISSES`]).
    warned_misses: Mutex<std::collections::BTreeSet<String>>,
}

/// Deterministically ordered dump of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl RegistrySnapshot {
    /// Canonical text serialization: one metric per line, sorted by
    /// name regardless of how the snapshot vectors were assembled, so
    /// same-seed registry dumps are byte-identical like traces are.
    pub fn canonical_text(&self) -> String {
        let mut counters = self.counters.clone();
        counters.sort();
        let mut histograms = self.histograms.clone();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::new();
        for (name, v) in &counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, s) in &histograms {
            let _ = writeln!(
                out,
                "hist {name} count={} sum={} min={} max={} p50={} p90={} p99={} p999={}",
                s.count,
                s.sum.as_nanos(),
                s.min.as_nanos(),
                s.max.as_nanos(),
                s.p50.as_nanos(),
                s.p90.as_nanos(),
                s.p99.as_nanos(),
                s.p999.as_nanos()
            );
        }
        out
    }
}

/// Canonical text of several nodes' snapshots, sorted by node id — the
/// registry half of a flight-recorder dump.
pub fn merged_registry_text(nodes: &[(u64, RegistrySnapshot)]) -> String {
    let mut sorted: Vec<&(u64, RegistrySnapshot)> = nodes.iter().collect();
    sorted.sort_by_key(|(node, _)| *node);
    let mut out = String::new();
    for (node, snap) in sorted {
        let _ = writeln!(out, "# node {node}");
        out.push_str(&snap.canonical_text());
    }
    out
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A read of metric `name` found nothing registered: bump
    /// [`REGISTRY_MISSES`] and warn once per name. A typo on either the
    /// write or the read side of a metric used to silently return zero
    /// — a report built on the wrong name looked plausible instead of
    /// failing loudly (the footgun OBS_SCHEMA.md exists to prevent).
    fn note_miss(&self, kind: &str, name: &str) {
        if name == REGISTRY_MISSES {
            // Reading the miss counter itself before any miss happened
            // is not a miss — it would recurse into minting itself.
            return;
        }
        // Literal (not the const) so `clouds-lint`'s obs-schema rule
        // sees the registration site.
        self.counter("obs.registry.misses").inc();
        if self.warned_misses.lock().insert(name.to_string()) {
            eprintln!(
                "clouds-obs: read of unregistered {kind} `{name}` returns zero — \
                 nothing ever recorded under that name (see OBS_SCHEMA.md)"
            );
        }
    }

    /// Current value of counter `name`.
    ///
    /// A never-registered name returns 0, but loudly: it bumps the
    /// [`REGISTRY_MISSES`] counter and warns on stderr once per name.
    pub fn counter_value(&self, name: &str) -> u64 {
        let existing = self.counters.lock().get(name).map(Arc::clone);
        match existing {
            Some(c) => c.get(),
            None => {
                self.note_miss("counter", name);
                0
            }
        }
    }

    /// Summary of histogram `name`.
    ///
    /// A never-registered name returns an empty summary, but loudly: it
    /// bumps [`REGISTRY_MISSES`] and warns on stderr once per name.
    pub fn histogram_summary(&self, name: &str) -> HistogramSummary {
        let existing = self.histograms.lock().get(name).map(Arc::clone);
        match existing {
            Some(h) => h.summary(),
            None => {
                self.note_miss("histogram", name);
                HistogramSummary {
                    count: 0,
                    sum: Vt::ZERO,
                    min: Vt::ZERO,
                    max: Vt::ZERO,
                    p50: Vt::ZERO,
                    p90: Vt::ZERO,
                    p99: Vt::ZERO,
                    p999: Vt::ZERO,
                }
            }
        }
    }

    /// Name-sorted snapshot of everything registered.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Per-node handle
// ---------------------------------------------------------------------------

/// The per-node observability handle: node id + virtual clock +
/// [`MetricsRegistry`] + shared [`TraceSink`]. Every instrumented layer
/// reaches its `NodeObs` through the transport node it already holds.
pub struct NodeObs {
    node: u64,
    clock: Arc<VirtualClock>,
    registry: Arc<MetricsRegistry>,
    sink: Arc<TraceSink>,
}

impl std::fmt::Debug for NodeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeObs").field("node", &self.node).finish()
    }
}

impl NodeObs {
    /// A handle with an explicit registry and (cluster-shared) sink.
    pub fn new(
        node: u64,
        clock: Arc<VirtualClock>,
        registry: Arc<MetricsRegistry>,
        sink: Arc<TraceSink>,
    ) -> Arc<NodeObs> {
        Arc::new(NodeObs {
            node,
            clock,
            registry,
            sink,
        })
    }

    /// A standalone handle with a fresh registry and private sink —
    /// what a node constructed outside a cluster uses.
    pub fn solo(node: u64, clock: Arc<VirtualClock>) -> Arc<NodeObs> {
        NodeObs::new(
            node,
            clock,
            Arc::new(MetricsRegistry::new()),
            Arc::new(TraceSink::default()),
        )
    }

    /// Simulated node id.
    pub fn node(&self) -> u64 {
        self.node
    }

    /// The node's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The node's metrics registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The trace sink events go to (shared across a cluster).
    pub fn sink(&self) -> &Arc<TraceSink> {
        &self.sink
    }

    /// Shorthand for [`MetricsRegistry::counter`].
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Shorthand for [`MetricsRegistry::histogram`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// Record an instant event at the current virtual time. When an
    /// ambient context is installed, the instant carries
    /// `(trace, span=0, parent=ambient span)` — a leaf annotation on
    /// the enclosing span.
    pub fn instant(&self, layer: &'static str, name: &'static str, args: String) {
        let ctx = current_ctx().map_or(SpanContext::NONE, |c| SpanContext {
            trace_id: c.trace_id,
            span_id: 0,
            parent_id: c.span_id,
        });
        self.sink.record(TraceEvent {
            ts: self.clock.now(),
            dur: None,
            node: self.node,
            layer,
            name,
            ctx,
            args,
        });
    }

    /// Open an untraced span starting at the current virtual time; it
    /// records on [`Span::finish`] (or drop) with the elapsed virtual
    /// duration.
    pub fn span(self: &Arc<Self>, layer: &'static str, name: &'static str) -> Span {
        Span {
            obs: Arc::clone(self),
            layer,
            name,
            start: self.clock.now(),
            ctx: SpanContext::NONE,
            pushed: false,
            args: String::new(),
            histogram: None,
            done: false,
        }
    }

    /// Open a span as a child of the ambient context if one is
    /// installed, or an untraced span otherwise. `disc` disambiguates
    /// the derived span id from siblings with the same name and start
    /// time (e.g. `dst=… port=… txn=…`); it does not appear in the
    /// event. The span's context becomes ambient until it records.
    pub fn traced_span(
        self: &Arc<Self>,
        layer: &'static str,
        name: &'static str,
        disc: &str,
    ) -> Span {
        match current_ctx() {
            Some(parent) => self.span_in_trace_at(
                self.clock.now(),
                parent.trace_id,
                parent.span_id,
                layer,
                name,
                disc,
            ),
            None => self.span(layer, name),
        }
    }

    /// Open a **root** span of the trace `trace_id` (parent 0). The
    /// span's context becomes ambient until it records.
    pub fn root_span(
        self: &Arc<Self>,
        trace_id: u64,
        layer: &'static str,
        name: &'static str,
        disc: &str,
    ) -> Span {
        self.span_in_trace_at(self.clock.now(), trace_id, 0, layer, name, disc)
    }

    /// Open a root span that **starts at `start`**, which may be before
    /// the clock's current time. This is how open-loop load harnesses
    /// charge queueing delay honestly: the span covers the request from
    /// its *intended arrival* to completion, so time spent waiting
    /// behind a backlog is measured instead of hidden
    /// (coordinated-omission-correct). `start` later than now is
    /// clamped at record time (durations never go negative).
    pub fn root_span_at(
        self: &Arc<Self>,
        start: Vt,
        trace_id: u64,
        layer: &'static str,
        name: &'static str,
        disc: &str,
    ) -> Span {
        self.span_in_trace_at(start, trace_id, 0, layer, name, disc)
    }

    fn span_in_trace_at(
        self: &Arc<Self>,
        start: Vt,
        trace_id: u64,
        parent_id: u64,
        layer: &'static str,
        name: &'static str,
        disc: &str,
    ) -> Span {
        let span_id = derive_id(
            &[trace_id, parent_id, self.node, start.as_nanos()],
            &[layer, name, disc],
        );
        let ctx = SpanContext {
            trace_id,
            span_id,
            parent_id,
        };
        CTX_STACK.with(|s| s.borrow_mut().push(ctx));
        Span {
            obs: Arc::clone(self),
            layer,
            name,
            start,
            ctx,
            pushed: true,
            args: String::new(),
            histogram: None,
            done: false,
        }
    }
}

/// An open span: records a completed [`TraceEvent`] (and optionally a
/// [`Histogram`] sample) covering `start..now` when finished or dropped.
pub struct Span {
    obs: Arc<NodeObs>,
    layer: &'static str,
    name: &'static str,
    start: Vt,
    ctx: SpanContext,
    pushed: bool,
    args: String,
    histogram: Option<Arc<Histogram>>,
    done: bool,
}

impl Span {
    /// Attach a detail string (shown in `args`).
    pub fn set_args(&mut self, args: String) {
        self.args = args;
    }

    /// Also record the span's duration into `histogram` on finish.
    pub fn with_histogram(mut self, histogram: Arc<Histogram>) -> Span {
        self.histogram = Some(histogram);
        self
    }

    /// Span start (virtual time).
    pub fn start(&self) -> Vt {
        self.start
    }

    /// This span's causal context ([`SpanContext::NONE`] when
    /// untraced) — what a transport attaches to outgoing messages.
    pub fn ctx(&self) -> SpanContext {
        self.ctx
    }

    fn record(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if self.pushed {
            CTX_STACK.with(|s| {
                let mut v = s.borrow_mut();
                if let Some(i) = v.iter().rposition(|c| *c == self.ctx) {
                    v.remove(i);
                }
            });
        }
        let end = self.obs.clock.now();
        let dur = end.saturating_sub(self.start);
        if let Some(h) = &self.histogram {
            h.record(dur);
        }
        self.obs.sink.record(TraceEvent {
            ts: self.start,
            dur: Some(dur),
            node: self.obs.node,
            layer: self.layer,
            name: self.name,
            ctx: self.ctx,
            args: std::mem::take(&mut self.args),
        });
    }

    /// Close the span now (idempotent; drop does the same).
    pub fn finish(mut self) {
        self.record();
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, node: u64, name: &'static str) -> TraceEvent {
        TraceEvent {
            ts: Vt::from_nanos(ts),
            dur: None,
            node,
            layer: "test",
            name,
            ctx: SpanContext::NONE,
            args: String::new(),
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let sink = TraceSink::new(3);
        for i in 0..5 {
            sink.record(ev(i, 1, "e"));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let kept: Vec<u64> = sink.snapshot().iter().map(|e| e.ts.as_nanos()).collect();
        assert_eq!(kept, vec![2, 3, 4], "tail of the timeline survives");
    }

    #[test]
    fn canonical_order_is_interleaving_independent() {
        let a = TraceSink::new(16);
        let b = TraceSink::new(16);
        // Same event set, different record order.
        let events = [ev(5, 2, "x"), ev(5, 1, "x"), ev(1, 9, "z"), ev(5, 1, "a")];
        for e in &events {
            a.record(e.clone());
        }
        for e in events.iter().rev() {
            b.record(e.clone());
        }
        assert_ne!(a.snapshot(), b.snapshot());
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical_jsonl(), b.canonical_jsonl());
        // ts dominates, then node, then name.
        let order: Vec<(u64, u64, &str)> = a
            .canonical()
            .iter()
            .map(|e| (e.ts.as_nanos(), e.node, e.name))
            .collect();
        assert_eq!(order, vec![(1, 9, "z"), (5, 1, "a"), (5, 1, "x"), (5, 2, "x")]);
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let sink = TraceSink::new(4);
        sink.record(TraceEvent {
            ts: Vt::from_nanos(7),
            dur: Some(Vt::from_nanos(3)),
            node: 42,
            layer: "dsm.client",
            name: "fetch_pages",
            ctx: SpanContext::NONE,
            args: "seg=\"s\"\n".to_string(),
        });
        let line = sink.canonical_jsonl();
        assert_eq!(
            line,
            "{\"ts\":7,\"dur\":3,\"node\":42,\"layer\":\"dsm.client\",\"name\":\"fetch_pages\",\"args\":\"seg=\\\"s\\\"\\n\"}\n"
        );
    }

    #[test]
    fn traced_jsonl_carries_ids_between_name_and_args() {
        let sink = TraceSink::new(4);
        sink.record(TraceEvent {
            ts: Vt::from_nanos(7),
            dur: Some(Vt::from_nanos(3)),
            node: 42,
            layer: "invoke",
            name: "invoke",
            ctx: SpanContext {
                trace_id: 9,
                span_id: 5,
                parent_id: 0,
            },
            args: "depth=0".to_string(),
        });
        assert_eq!(
            sink.canonical_jsonl(),
            "{\"ts\":7,\"dur\":3,\"node\":42,\"layer\":\"invoke\",\"name\":\"invoke\",\"trace\":9,\"span\":5,\"parent\":0,\"args\":\"depth=0\"}\n"
        );
    }

    #[test]
    fn chrome_trace_is_wellformed_json_shape() {
        let sink = TraceSink::new(4);
        sink.record(ev(1_000, 1, "i"));
        sink.record(TraceEvent {
            ts: Vt::from_nanos(2_000),
            dur: Some(Vt::from_nanos(500)),
            node: 1,
            layer: "test",
            name: "s",
            ctx: SpanContext::NONE,
            args: String::new(),
        });
        let body = sink.chrome_trace();
        assert!(body.starts_with("{\"traceEvents\":["));
        assert!(body.trim_end().ends_with("]}"));
        assert!(body.contains("\"ph\":\"i\""));
        assert!(body.contains("\"ph\":\"X\""));
        assert!(body.contains("\"dur\":0.500"));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        // Values below 32 ns are exact: one slot per value.
        for ns in 0..32u64 {
            assert_eq!(bucket_index(ns), ns as usize, "exact slot for {ns}");
        }
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(63), 63);
        assert_eq!(bucket_index(64), 64);
        assert_eq!(bucket_index(65), 64, "sub-bucket width 2 at 2^6");
        assert_eq!(bucket_index(66), 65);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);

        let h = Histogram::default();
        for us in [100u64, 200, 300, 400, 10_000] {
            h.record(Vt::from_micros(us));
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, Vt::from_micros(100));
        assert_eq!(s.max, Vt::from_micros(10_000));
        assert_eq!(s.mean(), Vt::from_micros(2200));
        // p50 is the rank-3 sample (300µs) within the ≤3.2% bound.
        assert!(s.p50 >= Vt::from_micros(300) && s.p50 <= Vt::from_micros(310));
        assert!(s.p99 >= Vt::from_micros(10_000) && s.p99 <= Vt::from_micros(10_320));
    }

    /// Every reported quantile must stay within the documented relative
    /// error bound of the true sample: record known value sets, compare
    /// `quantile(q)` against the exact rank statistic.
    #[test]
    fn histogram_percentile_accuracy_within_documented_bound() {
        let within = |reported: Vt, exact: u64| {
            let r = reported.as_nanos();
            assert!(r >= exact, "quantile {r} below exact sample {exact}");
            let bound = ((exact as f64) * HIST_RELATIVE_ERROR).max(1.0);
            assert!(
                (r - exact) as f64 <= bound + 1.0,
                "quantile {r} overshoots exact {exact} by more than {bound}"
            );
        };

        // Uniform 1..=10_000 ns.
        let h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(Vt::from_nanos(v));
        }
        for (q, exact) in [(0.50, 5_000), (0.90, 9_000), (0.99, 9_900), (0.999, 9_990)] {
            within(h.quantile(q), exact);
        }
        let s = h.summary();
        within(s.p50, 5_000);
        within(s.p90, 9_000);
        within(s.p99, 9_900);
        within(s.p999, 9_990);

        // Bimodal with a sparse far tail: 990 fast ops at 8 µs, 10 slow
        // at 90 ms — p99/p999 must resolve the far mode, not round to a
        // power of two.
        let h = Histogram::default();
        for _ in 0..990 {
            h.record(Vt::from_micros(8));
        }
        for _ in 0..10 {
            h.record(Vt::from_millis(90));
        }
        within(h.quantile(0.50), 8_000);
        within(h.quantile(0.99), 8_000);
        within(h.quantile(0.999), 90_000_000);

        // Single values across the full range: reported p100 within
        // bound of the value itself.
        for v in [1u64, 31, 32, 33, 1_000, 123_457, 999_999_937, u64::MAX / 3] {
            let h = Histogram::default();
            h.record(Vt::from_nanos(v));
            within(h.quantile(1.0), v);
        }
    }

    /// `merge(a, b).summary()` must equal the summary of one histogram
    /// that recorded `a ∪ b` directly.
    #[test]
    fn histogram_merge_equals_union() {
        let a = Histogram::default();
        let b = Histogram::default();
        let union = Histogram::default();
        for v in [3u64, 50, 51, 8_000, 8_191, 1 << 40] {
            a.record(Vt::from_nanos(v));
            union.record(Vt::from_nanos(v));
        }
        for v in [0u64, 7, 8_192, 123_456_789, u64::MAX] {
            b.record(Vt::from_nanos(v));
            union.record(Vt::from_nanos(v));
        }
        a.merge_from(&b);
        assert_eq!(a.summary(), union.summary());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(a.quantile(q), union.quantile(q), "q={q}");
        }

        // Merging an empty histogram is the identity.
        let before = union.summary();
        union.merge_from(&Histogram::default());
        assert_eq!(union.summary(), before);
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter_value("x"), 3);
        assert_eq!(reg.counter_value("missing"), 0);
    }

    #[test]
    fn registry_reads_of_unregistered_names_are_counted() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.counter_value(REGISTRY_MISSES), 0, "no misses yet");

        assert_eq!(reg.counter_value("never.registered"), 0);
        assert_eq!(reg.histogram_summary("never.registered").count, 0);
        assert_eq!(reg.counter_value("never.registered"), 0);
        assert_eq!(
            reg.counter_value(REGISTRY_MISSES),
            3,
            "every miss bumps the counter (the warning itself is one-shot per name)"
        );

        // Reading the miss counter itself never recurses or self-counts.
        assert_eq!(reg.counter_value(REGISTRY_MISSES), 3);

        // Registering afterwards stops the counting.
        reg.counter("never.registered").add(7);
        assert_eq!(reg.counter_value("never.registered"), 7);
        assert_eq!(reg.counter_value(REGISTRY_MISSES), 3);
    }

    #[test]
    fn registry_snapshot_consistent_under_concurrent_writers() {
        let reg = Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("ops");
                let h = reg.histogram("lat");
                for i in 0..1000u64 {
                    c.inc();
                    h.record(Vt::from_nanos(t * 1000 + i));
                    // Interleave snapshots with writes: must never panic
                    // or observe impossible totals.
                    if i % 100 == 0 {
                        let snap = reg.snapshot();
                        for (_, v) in &snap.counters {
                            assert!(*v <= 8000);
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters, vec![("ops".to_string(), 8000)]);
        let (_, lat) = &snap.histograms[0];
        assert_eq!(lat.count, 8000);
        // Every sample landed in exactly one bucket.
        let h = reg.histogram("lat");
        let bucket_total: u64 = h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(bucket_total, 8000);
    }

    #[test]
    fn spans_record_virtual_durations() {
        let clock = Arc::new(VirtualClock::new());
        let obs = NodeObs::solo(7, Arc::clone(&clock));
        let hist = obs.histogram("span.lat");
        {
            let mut span = obs.span("test", "work").with_histogram(Arc::clone(&hist));
            span.set_args("k=1".to_string());
            clock.charge(Vt::from_micros(250));
            span.finish();
        }
        obs.instant("test", "tick", String::new());
        let events = obs.sink().canonical();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "work");
        assert_eq!(events[0].dur, Some(Vt::from_micros(250)));
        assert_eq!(events[0].args, "k=1");
        assert_eq!(events[1].name, "tick");
        assert_eq!(events[1].ts, Vt::from_micros(250));
        assert_eq!(hist.summary().count, 1);
        assert_eq!(hist.summary().max, Vt::from_micros(250));
    }

    #[test]
    fn histogram_bucket_boundaries_at_powers_of_two() {
        // Every power of two ≥ 32 opens a fresh major bucket (first
        // sub-slot); the value just below it is the last sub-slot of the
        // previous major bucket. Indices are contiguous.
        for k in HIST_SUB_BITS..64 {
            let edge = 1u64 << k;
            let expected = HIST_SUB_BUCKETS * (k - HIST_SUB_BITS + 1) as usize;
            assert_eq!(bucket_index(edge), expected, "edge 2^{k}");
            assert_eq!(bucket_index(edge - 1), expected - 1, "below 2^{k}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX - 1), HISTOGRAM_BUCKETS - 1);

        // Upper bounds are exclusive, contiguous and monotone: bucket
        // i's bound is bucket i+1's lower edge.
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let ub = bucket_upper_bound(i);
            assert!(ub > 0);
            assert_eq!(
                bucket_index(ub),
                i + 1,
                "upper bound {ub} of bucket {i} opens bucket {}",
                i + 1
            );
            assert_eq!(bucket_index(ub - 1), i, "bound {ub} is exclusive");
        }

        // Top-bucket samples: quantiles saturate at u64::MAX instead of
        // overflowing the exclusive upper bound.
        let h = Histogram::default();
        h.record(Vt::from_nanos(u64::MAX));
        h.record(Vt::from_nanos(u64::MAX - 1));
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, Vt::from_nanos(u64::MAX));
        assert_eq!(s.p50, Vt::from_nanos(u64::MAX));
        assert_eq!(s.p99, Vt::from_nanos(u64::MAX));

        // Zero and one land in their own exact slots.
        let z = Histogram::default();
        z.record(Vt::ZERO);
        z.record(Vt::from_nanos(1));
        let s = z.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, Vt::ZERO);
        assert_eq!(s.p50, Vt::from_nanos(1), "zero slot's upper bound");
        assert_eq!(s.p99, Vt::from_nanos(2), "one slot's upper bound");
    }

    #[test]
    fn empty_histogram_summary_is_all_zero() {
        let s = Histogram::default().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean(), Vt::ZERO, "mean must not divide by zero");
        assert_eq!(s.sum, Vt::ZERO);
        assert_eq!(s.min, Vt::ZERO);
        assert_eq!(s.max, Vt::ZERO);
        assert_eq!(s.p50, Vt::ZERO);
        assert_eq!(s.p90, Vt::ZERO);
        assert_eq!(s.p99, Vt::ZERO);
        assert_eq!(s.p999, Vt::ZERO);
    }

    #[test]
    fn derive_id_is_deterministic_separated_and_nonzero() {
        let a = derive_id(&[1, 2], &["x", "y"]);
        assert_eq!(a, derive_id(&[1, 2], &["x", "y"]));
        assert_ne!(a, derive_id(&[1, 2], &["xy", ""]), "text separator matters");
        assert_ne!(a, derive_id(&[2, 1], &["x", "y"]));
        assert_ne!(derive_trace_id(1, 1), derive_trace_id(1, 2));
        assert_ne!(derive_id(&[], &[]), 0);
    }

    #[test]
    fn traced_spans_nest_and_instants_attach_to_ambient() {
        let clock = Arc::new(VirtualClock::new());
        let obs = NodeObs::solo(3, Arc::clone(&clock));
        assert_eq!(current_ctx(), None);

        let root = obs.root_span(0xDEAD, "invoke", "invoke", "obj=o");
        let root_ctx = root.ctx();
        assert_eq!(root_ctx.trace_id, 0xDEAD);
        assert_eq!(root_ctx.parent_id, 0);
        assert_eq!(current_ctx(), Some(root_ctx));

        clock.charge(Vt::from_micros(10));
        let child = obs.traced_span("ratp", "call", "dst=2");
        let child_ctx = child.ctx();
        assert_eq!(child_ctx.trace_id, 0xDEAD);
        assert_eq!(child_ctx.parent_id, root_ctx.span_id);
        obs.instant("ratp", "retransmit", String::new());
        child.finish();
        assert_eq!(current_ctx(), Some(root_ctx), "child popped on record");
        root.finish();
        assert_eq!(current_ctx(), None);

        // Without an ambient context, traced_span degrades to untraced.
        let plain = obs.traced_span("ratp", "call", "dst=2");
        assert_eq!(plain.ctx(), SpanContext::NONE);
        assert_eq!(current_ctx(), None);
        plain.finish();

        let events = obs.sink().canonical();
        let instant = events.iter().find(|e| e.name == "retransmit").unwrap();
        assert_eq!(instant.ctx.trace_id, 0xDEAD);
        assert_eq!(instant.ctx.span_id, 0);
        assert_eq!(instant.ctx.parent_id, child_ctx.span_id);
    }

    #[test]
    fn installed_ctx_parents_remote_side_spans() {
        let clock = Arc::new(VirtualClock::new());
        let obs = NodeObs::solo(9, Arc::clone(&clock));
        let wire = SpanContext {
            trace_id: 7,
            span_id: 21,
            parent_id: 3,
        };
        {
            let _g = install_ctx(wire);
            let server = obs.traced_span("dsm.server", "serve_fetch", "page=0");
            assert_eq!(server.ctx().trace_id, 7);
            assert_eq!(server.ctx().parent_id, 21, "child of the wire span");
            server.finish();
        }
        assert_eq!(current_ctx(), None);
    }

    #[test]
    fn registry_snapshot_text_is_canonically_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("zz.last").add(2);
        reg.counter("aa.first").inc();
        reg.histogram("m.lat").record(Vt::from_nanos(5));
        let text = reg.snapshot().canonical_text();
        assert_eq!(
            text,
            "counter aa.first 1\ncounter zz.last 2\nhist m.lat count=1 sum=5 min=5 max=5 p50=6 p90=6 p99=6 p999=6\n"
        );

        // Even a hand-assembled snapshot in the wrong order serializes
        // canonically — the byte-identity fix.
        let scrambled = RegistrySnapshot {
            counters: vec![("zz.last".into(), 2), ("aa.first".into(), 1)],
            histograms: reg.snapshot().histograms,
        };
        assert_eq!(scrambled.canonical_text(), text);

        let merged = merged_registry_text(&[
            (5, reg.snapshot()),
            (1, RegistrySnapshot::default()),
        ]);
        assert!(merged.starts_with("# node 1\n# node 5\n"), "{merged}");
    }
}
