//! Merged-trace reconstruction: parse canonical JSONL back into causal
//! trees, validate the edges, and compute critical paths.
//!
//! The [`TraceSink`](crate::TraceSink) of a cluster already merges every
//! node's events into one stream; this module rebuilds the Dapper-style
//! forest from the `trace`/`span`/`parent` ids, detects orphan parents,
//! duplicate span ids, parent cycles and same-node nesting violations,
//! and walks the greedy critical path used by the `trace_profile`
//! profiler and the E9 paper table.
//!
//! The line parser is strict about the canonical schema — exact key
//! order, no whitespace — because the determinism invariant compares
//! those bytes; `trace_check` and `trace_profile` both parse through
//! it so the format is pinned in one place.

use std::collections::{BTreeMap, BTreeSet};

/// One event parsed back from canonical JSONL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Virtual timestamp (span start for spans), nanoseconds.
    pub ts: u64,
    /// Span duration (`None` for instants), nanoseconds.
    pub dur: Option<u64>,
    /// Simulated node id.
    pub node: u64,
    /// Subsystem layer.
    pub layer: String,
    /// Event name.
    pub name: String,
    /// Trace id (0 = untraced).
    pub trace: u64,
    /// Span id (0 for instants, which annotate their parent).
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Detail string.
    pub args: String,
}

impl ParsedEvent {
    /// End of the event's interval (`ts` itself for instants).
    pub fn end(&self) -> u64 {
        self.ts.saturating_add(self.dur.unwrap_or(0))
    }

    /// True when the event is a completed span (has a duration).
    pub fn is_span(&self) -> bool {
        self.dur.is_some()
    }
}

/// Cursor over one line's bytes; every helper consumes an exact token.
struct Cursor<'a> {
    s: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self, tok: &str) -> bool {
        self.s[self.pos..].starts_with(tok)
    }

    fn expect(&mut self, tok: &str) -> Result<(), String> {
        if self.peek(tok) {
            self.pos += tok.len();
            Ok(())
        } else {
            Err(format!(
                "expected `{tok}` at byte {}, found `{}`",
                self.pos,
                &self.s[self.pos..self.s.len().min(self.pos + 16)]
            ))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.s.as_bytes().get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        self.s[start..self.pos]
            .parse()
            .map_err(|_| format!("expected a number at byte {start}"))
    }

    /// A JSON string body up to the closing quote, honouring escapes.
    fn string(&mut self) -> Result<String, String> {
        self.expect("\"")?;
        let mut out = String::new();
        let bytes = self.s.as_bytes();
        while let Some(&b) = bytes.get(self.pos) {
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = bytes.get(self.pos + 1).copied();
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.pos + 2..self.pos + 6)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 2;
                }
                _ => {
                    let c = self.s[self.pos..].chars().next().ok_or("truncated line")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        Err("unterminated string".to_string())
    }
}

/// Parse one canonical event line, enforcing the exact key order the
/// sink emits.
///
/// # Errors
///
/// A human-readable description of the first schema violation.
pub fn parse_line(s: &str) -> Result<ParsedEvent, String> {
    let mut c = Cursor { s, pos: 0 };
    c.expect("{\"ts\":")?;
    let ts = c.number()?;
    let dur = if c.peek(",\"dur\":") {
        c.expect(",\"dur\":")?;
        Some(c.number()?)
    } else {
        None
    };
    c.expect(",\"node\":")?;
    let node = c.number()?;
    c.expect(",\"layer\":")?;
    let layer = c.string()?;
    c.expect(",\"name\":")?;
    let name = c.string()?;
    let (trace, span, parent) = if c.peek(",\"trace\":") {
        c.expect(",\"trace\":")?;
        let trace = c.number()?;
        c.expect(",\"span\":")?;
        let span = c.number()?;
        c.expect(",\"parent\":")?;
        let parent = c.number()?;
        (trace, span, parent)
    } else {
        (0, 0, 0)
    };
    c.expect(",\"args\":")?;
    let args = c.string()?;
    c.expect("}")?;
    if c.pos != s.len() {
        return Err(format!("trailing bytes after event at byte {}", c.pos));
    }
    if layer.is_empty() || name.is_empty() {
        return Err("layer and name must be non-empty".to_string());
    }
    if trace == 0 && (span != 0 || parent != 0) {
        return Err("ids without a trace id".to_string());
    }
    if trace != 0 && span == 0 && parent == 0 {
        return Err("traced instant must name a parent span".to_string());
    }
    Ok(ParsedEvent {
        ts,
        dur,
        node,
        layer,
        name,
        trace,
        span,
        parent,
        args,
    })
}

/// Parse a whole JSONL body, prefixing errors with the 1-based line.
///
/// # Errors
///
/// The first malformed line's description.
pub fn parse_jsonl(body: &str) -> Result<Vec<ParsedEvent>, String> {
    body.lines()
        .enumerate()
        .map(|(i, line)| parse_line(line).map_err(|e| format!("line {}: {e}\n  {line}", i + 1)))
        .collect()
}

/// One reconstructed causal tree (all events sharing a trace id).
#[derive(Debug, Clone, Default)]
pub struct TraceTree {
    /// The trace id.
    pub trace_id: u64,
    /// Completed spans by span id.
    pub spans: BTreeMap<u64, ParsedEvent>,
    /// Children of each span (and of 0 for roots), sorted by
    /// `(ts, span id)`.
    pub children: BTreeMap<u64, Vec<u64>>,
    /// Span ids with `parent == 0`.
    pub roots: Vec<u64>,
    /// Instant annotations (span id 0) in the trace.
    pub instants: Vec<ParsedEvent>,
}

impl TraceTree {
    /// The distinct simulated nodes the tree's spans ran on.
    pub fn nodes(&self) -> BTreeSet<u64> {
        self.spans.values().map(|s| s.node).collect()
    }

    /// Greedy critical path from `root`: at every span, descend into
    /// the child with the largest duration (ties broken by earlier
    /// start, then smaller span id — both deterministic). Each step's
    /// `self_time` is its duration minus the on-path child's, so the
    /// steps' self-times telescope to the root's duration.
    pub fn critical_path(&self, root: u64) -> Vec<PathStep> {
        let mut path = Vec::new();
        let mut cur = root;
        while let Some(ev) = self.spans.get(&cur) {
            let next = self
                .children
                .get(&cur)
                .into_iter()
                .flatten()
                .filter_map(|id| self.spans.get(id))
                .max_by_key(|c| (c.dur.unwrap_or(0), std::cmp::Reverse((c.ts, c.span))));
            let dur = ev.dur.unwrap_or(0);
            let child_dur = next.map_or(0, |c| c.dur.unwrap_or(0));
            path.push(PathStep {
                span: cur,
                node: ev.node,
                layer: ev.layer.clone(),
                name: ev.name.clone(),
                dur,
                self_time: dur.saturating_sub(child_dur),
            });
            match next {
                Some(c) => cur = c.span,
                None => break,
            }
        }
        path
    }
}

/// One span on a critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Span id.
    pub span: u64,
    /// Node it ran on.
    pub node: u64,
    /// Layer.
    pub layer: String,
    /// Name.
    pub name: String,
    /// Span duration (ns).
    pub dur: u64,
    /// Duration exclusive of the on-path child (ns).
    pub self_time: u64,
}

/// Aggregate a critical path's self-time by layer.
pub fn layer_self_times(path: &[PathStep]) -> BTreeMap<String, u64> {
    let mut by_layer: BTreeMap<String, u64> = BTreeMap::new();
    for step in path {
        *by_layer.entry(step.layer.clone()).or_default() += step.self_time;
    }
    by_layer
}

/// Validation findings over a merged trace.
#[derive(Debug, Clone, Default)]
pub struct CausalReport {
    /// Distinct trace ids seen.
    pub traces: usize,
    /// Traced spans seen.
    pub spans: usize,
    /// Traced instants seen.
    pub instants: usize,
    /// Events whose non-zero parent id resolves to no span.
    pub orphans: Vec<String>,
    /// Span ids recorded more than once within one trace.
    pub duplicates: Vec<String>,
    /// Parent chains that loop.
    pub cycles: Vec<String>,
    /// Same-node children whose interval escapes the parent's.
    pub nesting: Vec<String>,
}

impl CausalReport {
    /// True when every causal edge checks out.
    pub fn is_clean(&self) -> bool {
        self.orphans.is_empty()
            && self.duplicates.is_empty()
            && self.cycles.is_empty()
            && self.nesting.is_empty()
    }

    /// All findings, one per line (empty when clean).
    pub fn findings(&self) -> Vec<String> {
        let mut out = Vec::new();
        out.extend(self.orphans.iter().map(|s| format!("orphan: {s}")));
        out.extend(self.duplicates.iter().map(|s| format!("duplicate: {s}")));
        out.extend(self.cycles.iter().map(|s| format!("cycle: {s}")));
        out.extend(self.nesting.iter().map(|s| format!("nesting: {s}")));
        out
    }
}

/// The reconstructed forest plus what fell outside it.
#[derive(Debug, Clone, Default)]
pub struct Forest {
    /// Trees by trace id.
    pub trees: BTreeMap<u64, TraceTree>,
    /// Events with no trace id (legacy spans, sched events, …).
    pub untraced: usize,
}

/// Build the causal forest from parsed events and validate every edge.
pub fn build_forest(events: &[ParsedEvent]) -> (Forest, CausalReport) {
    let mut forest = Forest::default();
    let mut report = CausalReport::default();
    for ev in events {
        if ev.trace == 0 {
            forest.untraced += 1;
            continue;
        }
        let tree = forest.trees.entry(ev.trace).or_insert_with(|| TraceTree {
            trace_id: ev.trace,
            ..TraceTree::default()
        });
        if ev.span == 0 {
            report.instants += 1;
            tree.instants.push(ev.clone());
        } else {
            report.spans += 1;
            if let Some(prev) = tree.spans.insert(ev.span, ev.clone()) {
                report.duplicates.push(format!(
                    "span {} in trace {} recorded twice ({}/{} and {}/{})",
                    ev.span, ev.trace, prev.layer, prev.name, ev.layer, ev.name
                ));
            }
        }
    }
    report.traces = forest.trees.len();

    for tree in forest.trees.values_mut() {
        // Edges and roots.
        let mut kids: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
        for ev in tree.spans.values() {
            if ev.parent == 0 {
                tree.roots.push(ev.span);
            } else {
                if !tree.spans.contains_key(&ev.parent) {
                    report.orphans.push(format!(
                        "span {} ({}/{}) in trace {} has unresolved parent {}",
                        ev.span, ev.layer, ev.name, tree.trace_id, ev.parent
                    ));
                }
                kids.entry(ev.parent).or_default().push((ev.ts, ev.span));
            }
        }
        for ev in &tree.instants {
            if !tree.spans.contains_key(&ev.parent) {
                report.orphans.push(format!(
                    "instant {}/{} in trace {} has unresolved parent {}",
                    ev.layer, ev.name, tree.trace_id, ev.parent
                ));
            }
        }
        for (parent, mut v) in kids {
            v.sort_unstable();
            tree.children
                .insert(parent, v.into_iter().map(|(_, id)| id).collect());
        }

        // Cycles: walk each parent chain; a chain longer than the span
        // count must loop.
        let limit = tree.spans.len() as u64 + 1;
        for ev in tree.spans.values() {
            let mut cur = ev.parent;
            let mut steps = 0u64;
            while cur != 0 {
                if cur == ev.span {
                    report
                        .cycles
                        .push(format!("span {} in trace {} is its own ancestor", ev.span, tree.trace_id));
                    break;
                }
                steps += 1;
                if steps > limit {
                    report.cycles.push(format!(
                        "parent chain from span {} in trace {} does not terminate",
                        ev.span, tree.trace_id
                    ));
                    break;
                }
                cur = tree.spans.get(&cur).map_or(0, |p| p.parent);
            }
        }

        // Same-node nesting: a child's interval must sit inside its
        // parent's (cross-node clocks are independent, so only same-node
        // pairs are comparable).
        for ev in tree.spans.values() {
            let Some(parent) = tree.spans.get(&ev.parent) else { continue };
            if parent.node == ev.node && (ev.ts < parent.ts || ev.end() > parent.end()) {
                report.nesting.push(format!(
                    "span {} ({}/{}) [{}..{}] escapes parent {} [{}..{}] on node {} in trace {}",
                    ev.span,
                    ev.layer,
                    ev.name,
                    ev.ts,
                    ev.end(),
                    parent.span,
                    parent.ts,
                    parent.end(),
                    ev.node,
                    tree.trace_id
                ));
            }
        }
        for ev in &tree.instants {
            let Some(parent) = tree.spans.get(&ev.parent) else { continue };
            if parent.node == ev.node && (ev.ts < parent.ts || ev.ts > parent.end()) {
                report.nesting.push(format!(
                    "instant {}/{} at {} escapes parent {} [{}..{}] on node {} in trace {}",
                    ev.layer,
                    ev.name,
                    ev.ts,
                    parent.span,
                    parent.ts,
                    parent.end(),
                    ev.node,
                    tree.trace_id
                ));
            }
        }
    }
    (forest, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(ts: u64, dur: u64, node: u64, name: &str, ids: (u64, u64, u64)) -> String {
        format!(
            "{{\"ts\":{ts},\"dur\":{dur},\"node\":{node},\"layer\":\"l\",\"name\":\"{name}\",\"trace\":{},\"span\":{},\"parent\":{},\"args\":\"\"}}",
            ids.0, ids.1, ids.2
        )
    }

    #[test]
    fn parses_all_three_shapes() {
        let body = [
            "{\"ts\":1,\"node\":2,\"layer\":\"sched\",\"name\":\"wake\",\"args\":\"\"}",
            "{\"ts\":1,\"dur\":5,\"node\":2,\"layer\":\"invoke\",\"name\":\"invoke\",\"trace\":9,\"span\":4,\"parent\":0,\"args\":\"d=0\"}",
            "{\"ts\":2,\"node\":2,\"layer\":\"ratp\",\"name\":\"retransmit\",\"trace\":9,\"span\":0,\"parent\":4,\"args\":\"\"}",
        ]
        .join("\n");
        let events = parse_jsonl(&body).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].trace, 0);
        assert!(events[1].is_span());
        assert_eq!(events[1].span, 4);
        assert_eq!(events[2].span, 0);
        assert_eq!(events[2].parent, 4);
    }

    #[test]
    fn parser_rejects_malformed_ids() {
        // span without trace
        assert!(parse_line(
            "{\"ts\":1,\"node\":2,\"layer\":\"x\",\"name\":\"y\",\"trace\":0,\"span\":1,\"parent\":0,\"args\":\"\"}"
        )
        .is_err());
        // ids out of order
        assert!(parse_line(
            "{\"ts\":1,\"node\":2,\"layer\":\"x\",\"name\":\"y\",\"span\":1,\"trace\":9,\"parent\":0,\"args\":\"\"}"
        )
        .is_err());
        // trailing junk
        assert!(parse_line(
            "{\"ts\":1,\"node\":2,\"layer\":\"x\",\"name\":\"y\",\"args\":\"\"} "
        )
        .is_err());
    }

    #[test]
    fn forest_builds_and_validates_a_clean_tree() {
        let body = [
            span_line(0, 100, 1, "invoke", (9, 10, 0)),
            span_line(10, 50, 1, "call", (9, 11, 10)),
            span_line(5, 20, 2, "serve_fetch", (9, 12, 11)),
            "{\"ts\":6,\"node\":2,\"layer\":\"l\",\"name\":\"grant\",\"trace\":9,\"span\":0,\"parent\":12,\"args\":\"\"}".to_string(),
        ]
        .join("\n");
        let events = parse_jsonl(&body).unwrap();
        let (forest, report) = build_forest(&events);
        assert!(report.is_clean(), "{:?}", report.findings());
        assert_eq!(report.traces, 1);
        assert_eq!(report.spans, 3);
        assert_eq!(report.instants, 1);
        let tree = &forest.trees[&9];
        assert_eq!(tree.roots, vec![10]);
        assert_eq!(tree.nodes().len(), 2);

        let path = tree.critical_path(10);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].self_time, 50);
        assert_eq!(path[1].self_time, 30);
        assert_eq!(path[2].self_time, 20);
        let total: u64 = path.iter().map(|s| s.self_time).sum();
        assert_eq!(total, 100, "self-times telescope to the root duration");
        assert_eq!(layer_self_times(&path)["l"], 100);
    }

    #[test]
    fn forest_flags_orphans_cycles_duplicates_and_nesting() {
        let body = [
            span_line(0, 100, 1, "root", (9, 10, 0)),
            // parent 99 does not exist
            span_line(10, 5, 1, "lost", (9, 13, 99)),
            // duplicate span id
            span_line(20, 5, 1, "dup1", (9, 11, 10)),
            span_line(30, 5, 1, "dup2", (9, 11, 10)),
            // same-node child escaping the parent interval
            span_line(90, 50, 1, "late", (9, 12, 10)),
            // two spans pointing at each other: a cycle
            span_line(1, 2, 3, "a", (7, 20, 21)),
            span_line(1, 2, 3, "b", (7, 21, 20)),
        ]
        .join("\n");
        let events = parse_jsonl(&body).unwrap();
        let (_, report) = build_forest(&events);
        assert!(!report.orphans.is_empty());
        assert!(!report.duplicates.is_empty());
        assert!(!report.cycles.is_empty());
        assert!(!report.nesting.is_empty());
        assert!(!report.is_clean());
    }
}
