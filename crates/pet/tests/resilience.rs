//! Fault-tolerance tests for PET (§5.2.2): static failures, dynamic
//! failures, quorum behaviour, and the resources-vs-resilience
//! trade-off.

use clouds::prelude::*;
use clouds::{decode_args, encode_result};
use clouds_consistency::ConsistencyRuntime;
use clouds_pet::{read_any, resilient_invoke, PetOptions, ReplicatedObject};
use clouds_simnet::CostModel;
use std::sync::Arc;

/// A work item: deterministic computation plus persistent accumulation.
struct Worker;

impl ObjectCode for Worker {
    fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
        match entry {
            "work" => {
                let rounds: u64 = decode_args(args)?;
                let mut acc = ctx.persistent().read_u64(0)?;
                for i in 0..rounds {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                ctx.persistent().write_u64(0, acc)?;
                ctx.persistent().write_u64(8, rounds)?;
                encode_result(&acc)
            }
            "slow_work" => {
                // Gives the test time to crash nodes mid-computation.
                std::thread::sleep(std::time::Duration::from_millis(150));
                let v = ctx.persistent().read_u64(0)? + 1;
                ctx.persistent().write_u64(0, v)?;
                encode_result(&v)
            }
            "get" => encode_result(&ctx.persistent().read_u64(0)?),
            other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
        }
    }
}

fn bed(computes: usize, datas: usize) -> (Cluster, Arc<ConsistencyRuntime>) {
    let cluster = Cluster::builder()
        .compute_servers(computes)
        .data_servers(datas)
        .workstations(0)
        .cost_model(CostModel::zero())
        .build()
        .unwrap();
    cluster.register_class("worker", Worker).unwrap();
    let runtime = ConsistencyRuntime::install(&cluster);
    (cluster, runtime)
}

#[test]
fn all_replicas_converge_after_commit() {
    let (cluster, _rt) = bed(3, 3);
    let robj = ReplicatedObject::create(cluster.compute(0), "worker", 3).unwrap();
    let outcome = resilient_invoke(
        cluster.computes(),
        &robj,
        "work",
        &clouds::encode_args(&10u64).unwrap(),
        &PetOptions {
            pets: 3,
            ..PetOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.committed_replicas.len(), 3);
    assert!(outcome.failed_pets.is_empty());
    let expected: u64 = decode_args(&outcome.result).unwrap();

    // Every replica now answers with the same committed value.
    for i in 0..3 {
        let v: u64 = decode_args(
            &cluster
                .compute(0)
                .invoke(
                    robj.replica(i).sysname,
                    "get",
                    &clouds::encode_args(&()).unwrap(),
                    None,
                )
                .unwrap(),
        )
        .unwrap();
        assert_eq!(v, expected, "replica {i}");
    }
}

#[test]
fn static_data_server_failure_is_tolerated() {
    // "Replication of objects, for tolerating static and dynamic
    // failures": one replica's data server is already dead when the
    // computation starts.
    let (cluster, _rt) = bed(3, 3);
    let robj = ReplicatedObject::create(cluster.compute(0), "worker", 3).unwrap();
    cluster.crash_data_server(2); // replica 2's home

    let outcome = resilient_invoke(
        cluster.computes(),
        &robj,
        "work",
        &clouds::encode_args(&5u64).unwrap(),
        &PetOptions {
            pets: 2, // replicas 0 and 1: both live
            ..PetOptions::default()
        },
    )
    .unwrap();
    // Quorum of 2/3 reached without the dead replica.
    assert!(outcome.committed_replicas.len() >= 2);
    assert!(!outcome.committed_replicas.contains(&2));
}

#[test]
fn static_compute_server_failure_is_tolerated() {
    let (cluster, _rt) = bed(3, 3);
    let robj = ReplicatedObject::create(cluster.compute(0), "worker", 3).unwrap();
    cluster.crash_compute(1); // PET 1's executor is already dead

    let outcome = resilient_invoke(
        cluster.computes(),
        &robj,
        "work",
        &clouds::encode_args(&5u64).unwrap(),
        &PetOptions {
            pets: 3,
            ..PetOptions::default()
        },
    )
    .unwrap();
    // PET 1 failed (its compute server cannot reach storage), but the
    // other two completed and one committed.
    assert!(outcome.failed_pets.iter().any(|(p, _)| *p == 1));
    assert!(outcome.committed_replicas.len() >= 2);
}

#[test]
fn dynamic_compute_failure_mid_run_is_tolerated() {
    let (cluster, _rt) = bed(3, 3);
    let robj = ReplicatedObject::create(cluster.compute(0), "worker", 3).unwrap();

    // Crash compute 0 while the PETs are inside slow_work.
    let net = cluster.network().clone();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(40));
        net.crash(clouds_simnet::NodeId(1)); // compute server 0
    });

    let outcome = resilient_invoke(
        cluster.computes(),
        &robj,
        "slow_work",
        &clouds::encode_args(&()).unwrap(),
        &PetOptions {
            pets: 3,
            ..PetOptions::default()
        },
    )
    .unwrap();
    killer.join().unwrap();
    // At least one PET survived and committed a quorum.
    assert!(outcome.committed_replicas.len() >= 2);
    let v: u64 = decode_args(&outcome.result).unwrap();
    assert_eq!(v, 1);
}

#[test]
fn insufficient_quorum_fails_cleanly() {
    let (cluster, _rt) = bed(2, 3);
    let robj = ReplicatedObject::create(cluster.compute(0), "worker", 3).unwrap();
    // Kill two of three replica homes: majority quorum unreachable.
    cluster.crash_data_server(1);
    cluster.crash_data_server(2);

    let result = resilient_invoke(
        cluster.computes(),
        &robj,
        "work",
        &clouds::encode_args(&3u64).unwrap(),
        &PetOptions {
            pets: 1, // PET 0 uses replica 0, whose home is alive
            ..PetOptions::default()
        },
    );
    assert!(matches!(
        result,
        Err(CloudsError::ConsistencyAbort(_)) | Err(CloudsError::ThreadFailed(_))
    ));
}

#[test]
fn explicit_quorum_one_commits_anywhere() {
    let (cluster, _rt) = bed(2, 3);
    let robj = ReplicatedObject::create(cluster.compute(0), "worker", 3).unwrap();
    cluster.crash_data_server(1);
    cluster.crash_data_server(2);

    let outcome = resilient_invoke(
        cluster.computes(),
        &robj,
        "work",
        &clouds::encode_args(&3u64).unwrap(),
        &PetOptions {
            pets: 1,
            write_quorum: Some(1),
            ..PetOptions::default()
        },
    )
    .unwrap();
    assert_eq!(outcome.committed_replicas, vec![0]);
}

#[test]
fn read_any_falls_through_dead_replicas() {
    let (cluster, _rt) = bed(2, 3);
    let robj = ReplicatedObject::create(cluster.compute(0), "worker", 3).unwrap();
    resilient_invoke(
        cluster.computes(),
        &robj,
        "work",
        &clouds::encode_args(&4u64).unwrap(),
        &PetOptions {
            pets: 2,
            ..PetOptions::default()
        },
    )
    .unwrap();
    cluster.crash_data_server(0); // replica 0's home dies after commit

    let bytes = read_any(
        cluster.compute(0),
        &robj,
        "get",
        &clouds::encode_args(&()).unwrap(),
        &[0], // prefer the dead one: must fall through
    )
    .unwrap();
    let v: u64 = decode_args(&bytes).unwrap();
    assert_ne!(v, 0);
}

#[test]
fn more_pets_increase_success_probability_under_failures() {
    // The §5.2.2 trade-off, in miniature: with one compute server dead,
    // pets=1 placed on the dead server always fails, pets=3 never does.
    let (cluster, _rt) = bed(3, 3);
    let robj = ReplicatedObject::create(cluster.compute(0), "worker", 3).unwrap();
    cluster.crash_compute(0);

    let one = resilient_invoke(
        &cluster.computes()[..1], // only the dead server available
        &robj,
        "work",
        &clouds::encode_args(&2u64).unwrap(),
        &PetOptions {
            pets: 1,
            ..PetOptions::default()
        },
    );
    assert!(one.is_err());

    let three = resilient_invoke(
        cluster.computes(),
        &robj,
        "work",
        &clouds::encode_args(&2u64).unwrap(),
        &PetOptions {
            pets: 3,
            ..PetOptions::default()
        },
    );
    assert!(three.is_ok());
}
