//! Replicated objects: one logical object, `r` physical instances on
//! data servers with independent failure modes.

use clouds::{CloudsError, ComputeServer};
use clouds_ra::SysName;
use clouds_simnet::NodeId;
use serde::{Deserialize, Serialize};

/// One physical replica of a replicated object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaInfo {
    /// The replica object's sysname.
    pub sysname: SysName,
    /// The data server that homes *all* of the replica's segments.
    pub home: u32,
    /// The replica's persistent data segment.
    pub data_seg: SysName,
    /// The replica's persistent heap segment.
    pub heap_seg: SysName,
}

impl ReplicaInfo {
    /// The home data server's node id.
    pub fn home_node(&self) -> NodeId {
        NodeId(self.home)
    }
}

/// A logical object realized as `r` co-class replicas.
///
/// All replicas share the class, so their segment layouts are
/// identical: a page image produced against one replica's data segment
/// applies verbatim to another's — which is what makes the terminating
/// PET's update propagation possible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicatedObject {
    /// The replicas, in placement order.
    pub replicas: Vec<ReplicaInfo>,
    /// The class every replica instantiates.
    pub class: String,
}

impl ReplicatedObject {
    /// Create `degree` replicas of `class`, placing replica `i` wholly
    /// on the cluster's data server `i mod |data servers|`.
    ///
    /// "The PET system works by first replicating all critical objects
    /// at different nodes in the system. The degree of replication is
    /// dependent on the degree of resilience required."
    ///
    /// # Errors
    ///
    /// Unknown class or storage failures.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn create(
        compute: &ComputeServer,
        class: &str,
        degree: usize,
    ) -> Result<ReplicatedObject, CloudsError> {
        assert!(degree > 0, "a replicated object needs at least one replica");
        let data_servers: Vec<NodeId> = compute.dsm().data_servers().to_vec();
        let mut replicas = Vec::with_capacity(degree);
        for i in 0..degree {
            let home = data_servers[i % data_servers.len()];
            let sysname = compute.create_object(class, None, Some(home))?;
            let meta = clouds::object::ObjectMeta::load(
                &**compute.object_manager().partition(),
                sysname,
            )?;
            replicas.push(ReplicaInfo {
                sysname,
                home: home.0,
                data_seg: meta.data_seg,
                heap_seg: meta.heap_seg,
            });
        }
        Ok(ReplicatedObject {
            replicas,
            class: class.to_string(),
        })
    }

    /// Replication degree.
    pub fn degree(&self) -> usize {
        self.replicas.len()
    }

    /// Replica `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn replica(&self, i: usize) -> &ReplicaInfo {
        &self.replicas[i]
    }

    /// Translate a segment of replica `from` into the corresponding
    /// segment of replica `to` (same layout, different sysnames).
    /// Returns `None` if `seg` is not one of `from`'s segments.
    pub fn translate_segment(&self, from: usize, to: usize, seg: SysName) -> Option<SysName> {
        let f = &self.replicas[from];
        let t = &self.replicas[to];
        if seg == f.data_seg {
            Some(t.data_seg)
        } else if seg == f.heap_seg {
            Some(t.heap_seg)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(n: u64, home: u32) -> ReplicaInfo {
        ReplicaInfo {
            sysname: SysName::from_parts(1, n),
            home,
            data_seg: SysName::from_parts(2, n),
            heap_seg: SysName::from_parts(3, n),
        }
    }

    #[test]
    fn segment_translation() {
        let robj = ReplicatedObject {
            replicas: vec![info(1, 100), info(2, 101)],
            class: "x".into(),
        };
        assert_eq!(
            robj.translate_segment(0, 1, SysName::from_parts(2, 1)),
            Some(SysName::from_parts(2, 2))
        );
        assert_eq!(
            robj.translate_segment(0, 1, SysName::from_parts(3, 1)),
            Some(SysName::from_parts(3, 2))
        );
        assert_eq!(robj.translate_segment(0, 1, SysName::from_parts(9, 9)), None);
    }

    #[test]
    fn serde_roundtrip() {
        let robj = ReplicatedObject {
            replicas: vec![info(1, 100)],
            class: "tally".into(),
        };
        let bytes = clouds_codec::to_bytes(&robj).unwrap();
        let back: ReplicatedObject = clouds_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, robj);
    }
}
