//! Resilient computations: n parallel execution threads over r replicas
//! with quorum commit (§5.2.2, Figure 5).

use crate::replica::ReplicatedObject;
use clouds::consistency_hooks::CpSession;
use clouds::{CloudsError, ComputeServer};
use clouds_consistency::{CommitReply, CommitRequest, PageImage, RemoteLockHooks};
use clouds_dsm::ports;
use clouds_ra::SysName;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static PET_OWNER: AtomicU64 = AtomicU64::new(1);
static PET_TXN: AtomicU64 = AtomicU64::new(1);
/// Seeds the derived trace id of a resilient computation started with
/// no ambient causal context (deterministic as long as such top-level
/// calls are issued in a deterministic order, which the harnesses do).
static PET_ROOT: AtomicU64 = AtomicU64::new(1);

/// Tuning for a resilient computation.
#[derive(Debug, Clone)]
pub struct PetOptions {
    /// Number of parallel execution threads ("the number of nodes is
    /// another parameter provided by the user, and reflects the degree
    /// of resilience required").
    pub pets: usize,
    /// Minimum replicas that must accept the terminating thread's
    /// updates; `None` means a majority of the replication degree.
    pub write_quorum: Option<usize>,
    /// Lock-wait deadline per PET, milliseconds.
    pub lock_wait_ms: u64,
}

impl Default for PetOptions {
    fn default() -> Self {
        PetOptions {
            pets: 2,
            write_quorum: None,
            lock_wait_ms: 2_000,
        }
    }
}

/// What a successful resilient computation reports.
#[derive(Debug, Clone)]
pub struct PetOutcome {
    /// The terminating thread's result bytes.
    pub result: Vec<u8>,
    /// Index of the PET chosen as terminating thread.
    pub winner: usize,
    /// Replica indices whose data servers accepted the committed update.
    pub committed_replicas: Vec<usize>,
    /// PETs that failed (their index and error text).
    pub failed_pets: Vec<(usize, String)>,
}

impl fmt::Display for PetOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PET winner #{} committed to {} replicas ({} pets failed)",
            self.winner,
            self.committed_replicas.len(),
            self.failed_pets.len()
        )
    }
}

/// What one PET produced: its return bytes plus the shadow pages it
/// wrote, keyed by (segment, page).
type PetUpdates = Result<(Vec<u8>, Vec<((SysName, u32), Vec<u8>)>), CloudsError>;

struct PetResult {
    pet: usize,
    replica: usize,
    compute: ComputeServer,
    outcome: PetUpdates,
}

/// Run `entry(args)` on a replicated object as a resilient computation.
///
/// PET `i` executes on `computes[i % computes.len()]` against replica
/// `i % degree`. All PETs run as independent gcp-threads (locks +
/// shadow pages, never touching canonical state). When all have
/// finished, completed PETs are considered in order; the first whose
/// updates reach a write quorum of replicas becomes the terminating
/// thread, and every other PET is aborted.
///
/// # Errors
///
/// [`CloudsError::ThreadFailed`] if no PET completes;
/// [`CloudsError::ConsistencyAbort`] if no completed PET's updates can
/// reach a quorum.
///
/// # Panics
///
/// Panics if `computes` is empty or `opts.pets` is zero.
pub fn resilient_invoke(
    computes: &[ComputeServer],
    robj: &ReplicatedObject,
    entry: &str,
    args: &[u8],
    opts: &PetOptions,
) -> Result<PetOutcome, CloudsError> {
    assert!(!computes.is_empty(), "need at least one compute server");
    assert!(opts.pets > 0, "need at least one parallel execution thread");
    let quorum = opts
        .write_quorum
        .unwrap_or(robj.degree() / 2 + 1)
        .clamp(1, robj.degree());
    let obs = Arc::clone(computes[0].ratp().obs());
    let detail = format!("pets={} degree={} quorum={quorum}", opts.pets, robj.degree());
    // Child of the ambient span when one exists (a PET launched from
    // inside an invocation); otherwise the root of a fresh trace.
    let mut span = if clouds_obs::current_ctx().is_some() {
        obs.traced_span("pet", "resilient_invoke", &detail)
    } else {
        let seq = PET_ROOT.fetch_add(1, Ordering::Relaxed);
        let trace_id = clouds_obs::derive_trace_id(0xBE7u64 << 48, seq);
        obs.root_span(trace_id, "pet", "resilient_invoke", &detail)
    };
    span.set_args(detail);
    let pet_ctx = span.ctx();

    // Phase 1: launch the PETs ("the separate threads run independently
    // as if there is no replication").
    let mut handles = Vec::new();
    for pet in 0..opts.pets {
        let compute = computes[pet % computes.len()].clone();
        let replica = pet % robj.degree();
        let target = robj.replica(replica).sysname;
        let entry = entry.to_string();
        let args = args.to_vec();
        let lock_wait = opts.lock_wait_ms;
        handles.push(std::thread::spawn(move || {
            // Inherit the resilient_invoke span: each PET's invocation
            // becomes a child in the same trace instead of a new root.
            let _trace = pet_ctx.is_some().then(|| clouds_obs::install_ctx(pet_ctx));
            let owner = PET_OWNER.fetch_add(1, Ordering::Relaxed) | (0xBE7u64 << 48);
            let hooks = Arc::new(RemoteLockHooks::new(
                Arc::clone(compute.ratp()),
                Arc::clone(compute.dsm()),
                lock_wait,
            ));
            let session = CpSession::new(owner, Arc::clone(&hooks) as _);
            let outcome = compute
                .invoke(target, &entry, &args, Some(Arc::clone(&session)))
                .map(|bytes| (bytes, session.take_shadows()));
            session.discard_shadows();
            hooks.release_all(owner);
            compute.ratp().obs().instant(
                "pet",
                "pet_run",
                format!("pet={pet} replica={replica} ok={}", outcome.is_ok()),
            );
            PetResult {
                pet,
                replica,
                compute,
                outcome,
            }
        }));
    }

    let mut completed = Vec::new();
    let mut failed = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(result) => match result.outcome {
                Ok((bytes, shadows)) => completed.push((result.pet, result.replica, result.compute, bytes, shadows)),
                Err(e) => failed.push((result.pet, e.to_string())),
            },
            Err(_) => failed.push((usize::MAX, "pet thread panicked".to_string())),
        }
    }
    if completed.is_empty() {
        return Err(CloudsError::ThreadFailed(format!(
            "no parallel execution thread completed ({} failures: {:?})",
            failed.len(),
            failed
        )));
    }

    // Phase 2: pick a terminating thread and propagate its updates to a
    // quorum of replicas. "If there is a failure in committing this
    // thread, another completed thread is chosen."
    let mut last_commit_error = None;
    for (pet, replica, compute, bytes, shadows) in completed {
        match commit_to_quorum(&compute, robj, replica, &shadows, quorum) {
            Ok(committed_replicas) => {
                obs.instant(
                    "pet",
                    "terminate",
                    format!("pet={pet} replicas={}", committed_replicas.len()),
                );
                return Ok(PetOutcome {
                    result: bytes,
                    winner: pet,
                    committed_replicas,
                    failed_pets: failed,
                });
            }
            Err(e) => last_commit_error = Some(e),
        }
    }
    Err(last_commit_error.unwrap_or_else(|| {
        CloudsError::ConsistencyAbort("no terminating thread could commit".into())
    }))
}

/// Propagate the winner's shadow pages to every replica, demanding at
/// least `quorum` full per-replica installs. Each replica's segments are
/// co-located on one data server, so the per-replica install is atomic
/// there (the participant's `ApplyLocal`).
fn commit_to_quorum(
    compute: &ComputeServer,
    robj: &ReplicatedObject,
    winner_replica: usize,
    shadows: &[((SysName, u32), Vec<u8>)],
    quorum: usize,
) -> Result<Vec<usize>, CloudsError> {
    if shadows.is_empty() {
        // Read-only computation: every live replica is trivially current.
        return Ok((0..robj.degree()).collect());
    }
    let txn = PET_TXN.fetch_add(1, Ordering::Relaxed) | (0x9E7u64 << 48);
    let mut committed = Vec::new();
    for target in 0..robj.degree() {
        let mut pages = Vec::with_capacity(shadows.len());
        for ((seg, page), data) in shadows {
            match robj.translate_segment(winner_replica, target, *seg) {
                Some(tseg) => pages.push(PageImage {
                    seg: tseg,
                    page: *page,
                    data: data.clone(),
                }),
                None => {
                    // The PET wrote outside the replicated object (e.g. a
                    // nested invocation of a non-replicated object): that
                    // update belongs to exactly one physical object and is
                    // applied only once, with the winner's replica.
                    if target == winner_replica {
                        pages.push(PageImage {
                            seg: *seg,
                            page: *page,
                            data: data.clone(),
                        });
                    }
                }
            }
        }
        let home = robj.replica(target).home_node();
        let req = CommitRequest::ApplyLocal { txn, pages };
        let payload = bytes::Bytes::from(clouds_codec::to_bytes(&req).expect("encodes"));
        let applied = compute
            .ratp()
            .call_with_budget(home, ports::COMMIT, payload, 60)
            .ok()
            .and_then(|b| clouds_codec::from_bytes::<CommitReply>(&b).ok())
            == Some(CommitReply::Ok);
        compute.ratp().obs().instant(
            "pet",
            "replica_vote",
            format!("replica={target} accepted={applied}"),
        );
        compute
            .ratp()
            .obs()
            .counter(if applied {
                "pet.replica_accepts"
            } else {
                "pet.replica_rejects"
            })
            .inc();
        if applied {
            committed.push(target);
        }
    }
    if committed.len() >= quorum {
        Ok(committed)
    } else {
        Err(CloudsError::ConsistencyAbort(format!(
            "only {}/{} replicas accepted the terminating thread (quorum {quorum})",
            committed.len(),
            robj.degree()
        )))
    }
}

/// Read from the first reachable replica, preferring the given order.
///
/// # Errors
///
/// The last replica's error if none are reachable.
pub fn read_any(
    compute: &ComputeServer,
    robj: &ReplicatedObject,
    entry: &str,
    args: &[u8],
    prefer: &[usize],
) -> Result<Vec<u8>, CloudsError> {
    let mut order: Vec<usize> = prefer.to_vec();
    for i in 0..robj.degree() {
        if !order.contains(&i) {
            order.push(i);
        }
    }
    let mut last = None;
    for i in order {
        match compute.invoke(robj.replica(i).sysname, entry, args, None) {
            Ok(bytes) => return Ok(bytes),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| CloudsError::ThreadFailed("no replicas".into())))
}
