//! `clouds-pet` — **Parallel Execution Threads** (§5.2.2).
//!
//! > "The approach uses a mechanism called parallel execution threads or
//! > PET which tries to provide uninterrupted processing in the face of
//! > pre-existing (static) failures, as well as system and software
//! > failures that occur while a resilient computation is in progress
//! > (dynamic failures)."
//!
//! The three requirements the paper lists map directly onto this crate:
//!
//! * **Replication of objects** — [`ReplicatedObject::create`] makes `r`
//!   instances of a class, each placed wholly on a *different* data
//!   server (independent failure modes).
//! * **Replication of computation** — [`resilient_invoke`] starts `n`
//!   parallel gcp-threads, each on a different compute server, each
//!   invoking a *different replica* ("the replica selection algorithm
//!   tries to ensure that separate threads execute at different nodes to
//!   minimize the number of threads affected by a failure"). The PETs
//!   "run independently as if there is no replication": their updates
//!   stay in private shadow pages.
//! * **An atomic commit mechanism** — when one or more PETs complete,
//!   one is chosen as the **terminating thread**; its updates are
//!   propagated to a quorum of replicas through the data servers' commit
//!   participants. "If there is a failure in committing this thread,
//!   another completed thread is chosen. If the commit process succeeds,
//!   all the remaining threads are aborted."
//!
//! "This method allows a tradeoff in the amount of resources used (i.e.
//! the number of parallel threads started for each computation) and the
//! desired degree of resilience" — exactly what experiment E6 measures.
//!
//! # Examples
//!
//! ```
//! use clouds::prelude::*;
//! use clouds_consistency::ConsistencyRuntime;
//! use clouds_pet::{resilient_invoke, PetOptions, ReplicatedObject};
//!
//! struct Tally;
//! impl ObjectCode for Tally {
//!     fn dispatch(&self, entry: &str, ctx: &mut Invocation<'_>, args: &[u8]) -> EntryResult {
//!         match entry {
//!             "add" => {
//!                 let n: u64 = decode_args(args)?;
//!                 let v = ctx.persistent().read_u64(0)? + n;
//!                 ctx.persistent().write_u64(0, v)?;
//!                 encode_result(&v)
//!             }
//!             "get" => encode_result(&ctx.persistent().read_u64(0)?),
//!             other => Err(CloudsError::NoSuchEntryPoint(other.to_string())),
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), CloudsError> {
//! let cluster = Cluster::builder()
//!     .compute_servers(3)
//!     .data_servers(3)
//!     .cost_model(clouds_simnet::CostModel::zero())
//!     .build()?;
//! cluster.register_class("tally", Tally)?;
//! let _runtime = ConsistencyRuntime::install(&cluster);
//!
//! // Triplicated object, 2 parallel execution threads, majority quorum.
//! let robj = ReplicatedObject::create(cluster.compute(0), "tally", 3)?;
//! let outcome = resilient_invoke(
//!     cluster.computes(),
//!     &robj,
//!     "add",
//!     &clouds::encode_args(&7u64)?,
//!     &PetOptions { pets: 2, ..PetOptions::default() },
//! )?;
//! let total: u64 = clouds::decode_args(&outcome.result)?;
//! assert_eq!(total, 7);
//! assert!(outcome.committed_replicas.len() >= 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod replica;
mod resilient;

pub use replica::{ReplicaInfo, ReplicatedObject};
pub use resilient::{resilient_invoke, read_any, PetOptions, PetOutcome};
