//! `clouds-naming` — the Clouds name server.
//!
//! §2.1: "Users can define high-level names for objects. These are
//! translated to sysnames using a name server." §2.4 shows the usage:
//! `rect.bind("Rect01")` performs a "call to name server, binds sysname
//! to Rect01".
//!
//! The name server is deliberately *not* part of the kernel: naming is a
//! "non-critical service … implemented as user objects to complete the
//! functionality of Clouds" (§4). Here it is a small RaTP service
//! ([`NameServer`]) plus a client stub ([`NameClient`]) used by the
//! Clouds shell and by `rect.bind(...)`-style code.
//!
//! # Examples
//!
//! ```
//! use clouds_naming::{NameClient, NameServer};
//! use clouds_ra::SysName;
//! use clouds_ratp::{RatpConfig, RatpNode};
//! use clouds_simnet::{CostModel, Network, NodeId};
//!
//! let net = Network::new(CostModel::zero());
//! let server_node = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
//! let _server = NameServer::install(&server_node);
//!
//! let client_node = RatpNode::spawn(net.register(NodeId(2)).unwrap(), RatpConfig::default());
//! let names = NameClient::new(&client_node, NodeId(1));
//!
//! let rect01 = SysName::from_parts(2, 77);
//! names.register("Rect01", rect01).unwrap();
//! assert_eq!(names.lookup("Rect01").unwrap(), rect01);
//! ```

#![forbid(unsafe_code)]

use clouds_ra::SysName;
use clouds_ratp::{CallError, RatpNode, Request};
use clouds_simnet::NodeId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// RaTP port of the name service (shared constant with `clouds-dsm`'s
/// port registry).
pub const NAMING_PORT: u16 = 14;

/// Requests accepted by the name server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NameRequest {
    /// Bind `name` to `sysname`; fails if already bound.
    Register {
        /// High-level user name.
        name: String,
        /// Target sysname.
        sysname: SysName,
    },
    /// Translate a user name to its sysname.
    Lookup {
        /// High-level user name.
        name: String,
    },
    /// Remove a binding.
    Unregister {
        /// High-level user name.
        name: String,
    },
    /// Enumerate bindings with a given prefix (the shell's `ls`).
    List {
        /// Name prefix; empty string lists everything.
        prefix: String,
    },
}

/// Replies from the name server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NameReply {
    /// Operation succeeded with no payload.
    Ok,
    /// Lookup result.
    Sysname(SysName),
    /// Listing result.
    Names(Vec<(String, SysName)>),
    /// The name is not bound.
    NotFound,
    /// Register of an already-bound name.
    AlreadyBound,
    /// Malformed request.
    Bad,
}

/// Errors surfaced by [`NameClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NameError {
    /// The name is not bound.
    NotFound(String),
    /// Register of an already-bound name.
    AlreadyBound(String),
    /// The name server is unreachable.
    Unavailable(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::NotFound(n) => write!(f, "name {n:?} is not bound"),
            NameError::AlreadyBound(n) => write!(f, "name {n:?} is already bound"),
            NameError::Unavailable(m) => write!(f, "name server unavailable: {m}"),
        }
    }
}

impl std::error::Error for NameError {}

/// The name server: a flat, ordered map of user names to sysnames.
pub struct NameServer {
    bindings: RwLock<BTreeMap<String, SysName>>,
    /// Keeps the node's transport (and its receive loop) alive for as
    /// long as the service exists.
    _ratp: RwLock<Option<Arc<RatpNode>>>,
}

impl fmt::Debug for NameServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameServer")
            .field("bindings", &self.bindings.read().len())
            .finish()
    }
}

impl Default for NameServer {
    fn default() -> Self {
        NameServer {
            bindings: RwLock::new(BTreeMap::new()),
            _ratp: RwLock::new(None),
        }
    }
}

impl NameServer {
    /// Create the server and register its RaTP service on this node.
    pub fn install(ratp: &Arc<RatpNode>) -> Arc<NameServer> {
        let server = Arc::new(NameServer::default());
        *server._ratp.write() = Some(Arc::clone(ratp));
        let handler = Arc::clone(&server);
        ratp.register_service(NAMING_PORT, move |req: Request| {
            let reply = match clouds_codec::from_bytes::<NameRequest>(&req.payload) {
                Ok(message) => handler.handle(message),
                Err(_) => NameReply::Bad,
            };
            bytes::Bytes::from(clouds_codec::to_bytes(&reply).expect("reply encodes"))
        });
        server
    }

    fn handle(&self, req: NameRequest) -> NameReply {
        match req {
            NameRequest::Register { name, sysname } => {
                let mut b = self.bindings.write();
                if let std::collections::btree_map::Entry::Vacant(e) = b.entry(name) {
                    e.insert(sysname);
                    NameReply::Ok
                } else {
                    NameReply::AlreadyBound
                }
            }
            NameRequest::Lookup { name } => match self.bindings.read().get(&name) {
                Some(s) => NameReply::Sysname(*s),
                None => NameReply::NotFound,
            },
            NameRequest::Unregister { name } => match self.bindings.write().remove(&name) {
                Some(_) => NameReply::Ok,
                None => NameReply::NotFound,
            },
            NameRequest::List { prefix } => NameReply::Names(
                self.bindings
                    .read()
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix))
                    .map(|(k, v)| (k.clone(), *v))
                    .collect(),
            ),
        }
    }

    /// Number of bindings (diagnostics).
    pub fn len(&self) -> usize {
        self.bindings.read().len()
    }

    /// Whether the server holds no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.read().is_empty()
    }
}

/// Client stub for the name server.
#[derive(Clone)]
pub struct NameClient {
    ratp: Arc<RatpNode>,
    server: NodeId,
}

impl fmt::Debug for NameClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameClient")
            .field("server", &self.server)
            .finish()
    }
}

impl NameClient {
    /// A client that talks to the name server on `server`.
    pub fn new(ratp: &Arc<RatpNode>, server: NodeId) -> NameClient {
        NameClient {
            ratp: Arc::clone(ratp),
            server,
        }
    }

    fn call(&self, req: &NameRequest) -> Result<NameReply, NameError> {
        let payload =
            bytes::Bytes::from(clouds_codec::to_bytes(req).expect("request encodes"));
        match self.ratp.call(self.server, NAMING_PORT, payload) {
            Ok(bytes) => clouds_codec::from_bytes(&bytes)
                .map_err(|e| NameError::Unavailable(format!("bad reply: {e}"))),
            Err(CallError::TimedOut) => {
                Err(NameError::Unavailable("name server timed out".into()))
            }
            Err(e) => Err(NameError::Unavailable(e.to_string())),
        }
    }

    /// Bind a user name to a sysname.
    ///
    /// # Errors
    ///
    /// [`NameError::AlreadyBound`] if taken, [`NameError::Unavailable`]
    /// on transport failure.
    pub fn register(&self, name: &str, sysname: SysName) -> Result<(), NameError> {
        match self.call(&NameRequest::Register {
            name: name.to_string(),
            sysname,
        })? {
            NameReply::Ok => Ok(()),
            NameReply::AlreadyBound => Err(NameError::AlreadyBound(name.to_string())),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }

    /// Translate a user name to its sysname (the `bind` of §2.4).
    ///
    /// # Errors
    ///
    /// [`NameError::NotFound`] if unbound, [`NameError::Unavailable`]
    /// on transport failure.
    pub fn lookup(&self, name: &str) -> Result<SysName, NameError> {
        match self.call(&NameRequest::Lookup {
            name: name.to_string(),
        })? {
            NameReply::Sysname(s) => Ok(s),
            NameReply::NotFound => Err(NameError::NotFound(name.to_string())),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }

    /// Remove a binding.
    ///
    /// # Errors
    ///
    /// [`NameError::NotFound`] if unbound, [`NameError::Unavailable`]
    /// on transport failure.
    pub fn unregister(&self, name: &str) -> Result<(), NameError> {
        match self.call(&NameRequest::Unregister {
            name: name.to_string(),
        })? {
            NameReply::Ok => Ok(()),
            NameReply::NotFound => Err(NameError::NotFound(name.to_string())),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }

    /// List bindings whose names start with `prefix`.
    ///
    /// # Errors
    ///
    /// [`NameError::Unavailable`] on transport failure.
    pub fn list(&self, prefix: &str) -> Result<Vec<(String, SysName)>, NameError> {
        match self.call(&NameRequest::List {
            prefix: prefix.to_string(),
        })? {
            NameReply::Names(names) => Ok(names),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clouds_ratp::RatpConfig;
    use clouds_simnet::{CostModel, Network};

    fn bed() -> (Network, Arc<NameServer>, NameClient) {
        let net = Network::new(CostModel::zero());
        let sn = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
        let server = NameServer::install(&sn);
        let cn = RatpNode::spawn(net.register(NodeId(2)).unwrap(), RatpConfig::default());
        let client = NameClient::new(&cn, NodeId(1));
        (net, server, client)
    }

    fn s(n: u64) -> SysName {
        SysName::from_parts(5, n)
    }

    #[test]
    fn register_lookup_unregister() {
        let (_net, server, client) = bed();
        client.register("Rect01", s(1)).unwrap();
        assert_eq!(client.lookup("Rect01").unwrap(), s(1));
        assert_eq!(server.len(), 1);
        client.unregister("Rect01").unwrap();
        assert!(matches!(
            client.lookup("Rect01"),
            Err(NameError::NotFound(_))
        ));
        assert!(server.is_empty());
    }

    #[test]
    fn double_register_rejected() {
        let (_net, _server, client) = bed();
        client.register("X", s(1)).unwrap();
        assert!(matches!(
            client.register("X", s(2)),
            Err(NameError::AlreadyBound(_))
        ));
        // Original binding intact.
        assert_eq!(client.lookup("X").unwrap(), s(1));
    }

    #[test]
    fn unregister_missing_is_not_found() {
        let (_net, _server, client) = bed();
        assert!(matches!(
            client.unregister("ghost"),
            Err(NameError::NotFound(_))
        ));
    }

    #[test]
    fn service_keeps_transport_alive() {
        // Regression test: `bed()` drops its local Arc<RatpNode>; the
        // NameServer must keep the transport's receive loop alive, even
        // when the first call arrives much later.
        for i in 0..3 {
            let (_net, _server, client) = bed();
            std::thread::sleep(std::time::Duration::from_millis(60));
            client
                .register("probe", s(1))
                .unwrap_or_else(|e| panic!("bed {i}: {e}"));
        }
    }

    #[test]
    fn list_by_prefix() {
        let (_net, _server, client) = bed();
        client.register("app/a", s(1)).unwrap();
        client.register("app/b", s(2)).unwrap();
        client.register("sys/x", s(3)).unwrap();
        let apps = client.list("app/").unwrap();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].0, "app/a");
        assert_eq!(apps[1].0, "app/b");
        let all = client.list("").unwrap();
        assert_eq!(all.len(), 3);
        assert!(client.list("zzz").unwrap().is_empty());
    }

    #[test]
    fn lookup_on_dead_server_is_unavailable() {
        let net = Network::new(CostModel::zero());
        let _sn = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
        let cn = RatpNode::spawn(
            net.register(NodeId(2)).unwrap(),
            RatpConfig {
                max_retries: 3,
                retry_interval: std::time::Duration::from_millis(5),
                ..RatpConfig::default()
            },
        );
        let client = NameClient::new(&cn, NodeId(1));
        net.crash(NodeId(1));
        assert!(matches!(
            client.lookup("x"),
            Err(NameError::Unavailable(_))
        ));
    }
}
