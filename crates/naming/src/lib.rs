//! `clouds-naming` — the Clouds name server.
//!
//! §2.1: "Users can define high-level names for objects. These are
//! translated to sysnames using a name server." §2.4 shows the usage:
//! `rect.bind("Rect01")` performs a "call to name server, binds sysname
//! to Rect01".
//!
//! The name server is deliberately *not* part of the kernel: naming is a
//! "non-critical service … implemented as user objects to complete the
//! functionality of Clouds" (§4). Here it is a small RaTP service
//! ([`NameServer`]) plus a client stub ([`NameClient`]) used by the
//! Clouds shell and by `rect.bind(...)`-style code.
//!
//! # Examples
//!
//! ```
//! use clouds_naming::{NameClient, NameServer};
//! use clouds_ra::SysName;
//! use clouds_ratp::{RatpConfig, RatpNode};
//! use clouds_simnet::{CostModel, Network, NodeId};
//!
//! let net = Network::new(CostModel::zero());
//! let server_node = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
//! let _server = NameServer::install(&server_node);
//!
//! let client_node = RatpNode::spawn(net.register(NodeId(2)).unwrap(), RatpConfig::default());
//! let names = NameClient::new(&client_node, NodeId(1));
//!
//! let rect01 = SysName::from_parts(2, 77);
//! names.register("Rect01", rect01).unwrap();
//! assert_eq!(names.lookup("Rect01").unwrap(), rect01);
//! ```

#![forbid(unsafe_code)]

use clouds_ra::SysName;
use clouds_ratp::{CallError, RatpNode, Request};
use clouds_simnet::NodeId;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// RaTP port of the name service (shared constant with `clouds-dsm`'s
/// port registry).
pub const NAMING_PORT: u16 = 14;

/// Requests accepted by the name server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NameRequest {
    /// Bind `name` to `sysname`; fails if already bound.
    Register {
        /// High-level user name.
        name: String,
        /// Target sysname.
        sysname: SysName,
    },
    /// Translate a user name to its sysname.
    Lookup {
        /// High-level user name.
        name: String,
    },
    /// Remove a binding.
    Unregister {
        /// High-level user name.
        name: String,
    },
    /// Enumerate bindings with a given prefix (the shell's `ls`).
    List {
        /// Name prefix; empty string lists everything.
        prefix: String,
    },
    /// Record a segment's replica set (primary + ordered backups) at
    /// epoch 1; fails if the segment already has one.
    RegisterReplicas {
        /// The replicated segment.
        seg: SysName,
        /// Serving primary (raw [`NodeId`] value).
        primary: u32,
        /// Backup homes, in promotion order (raw [`NodeId`] values).
        backups: Vec<u32>,
    },
    /// Fetch a segment's current replica set.
    LookupReplicas {
        /// The replicated segment.
        seg: SysName,
    },
    /// Re-home `seg` onto `new_primary` at `epoch`. Idempotent: applied
    /// only when `epoch` exceeds the directory's current epoch for the
    /// segment, so duplicate or late promotion messages are no-ops.
    Promote {
        /// The replicated segment.
        seg: SysName,
        /// The backup being promoted (raw [`NodeId`] value).
        new_primary: u32,
        /// Proposed epoch; must be greater than the current one to win.
        epoch: u64,
    },
}

/// Replies from the name server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NameReply {
    /// Operation succeeded with no payload.
    Ok,
    /// Lookup result.
    Sysname(SysName),
    /// Listing result.
    Names(Vec<(String, SysName)>),
    /// The name is not bound.
    NotFound,
    /// Register of an already-bound name.
    AlreadyBound,
    /// Replica-set result: the set as the directory now records it.
    Replicas(ReplicaSet),
    /// Malformed request.
    Bad,
}

/// A segment's homes as recorded by the directory: the serving primary,
/// the backups in promotion order, and the epoch that fences stale
/// promotions. Node ids are raw [`NodeId`] values (`u32`) because the
/// set travels on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaSet {
    /// The serving primary's raw node id.
    pub primary: u32,
    /// Backup homes in promotion order, raw node ids.
    pub backups: Vec<u32>,
    /// Monotone re-homing epoch; starts at 1, bumped by each applied
    /// [`NameRequest::Promote`].
    pub epoch: u64,
}

impl ReplicaSet {
    /// The primary as a [`NodeId`].
    pub fn primary_node(&self) -> NodeId {
        NodeId(self.primary)
    }

    /// The backups as [`NodeId`]s, in promotion order.
    pub fn backup_nodes(&self) -> Vec<NodeId> {
        self.backups.iter().map(|&n| NodeId(n)).collect()
    }
}

/// Errors surfaced by [`NameClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NameError {
    /// The name is not bound.
    NotFound(String),
    /// Register of an already-bound name.
    AlreadyBound(String),
    /// The name server is unreachable.
    Unavailable(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::NotFound(n) => write!(f, "name {n:?} is not bound"),
            NameError::AlreadyBound(n) => write!(f, "name {n:?} is already bound"),
            NameError::Unavailable(m) => write!(f, "name server unavailable: {m}"),
        }
    }
}

impl std::error::Error for NameError {}

/// The name server: a flat, ordered map of user names to sysnames.
pub struct NameServer {
    bindings: RwLock<BTreeMap<String, SysName>>,
    /// Per-segment replica sets for segments stored redundantly across
    /// data servers. Separate from `bindings`: these map *sysnames* to
    /// homes, not user names to sysnames.
    replicas: RwLock<BTreeMap<SysName, ReplicaSet>>,
    /// Keeps the node's transport (and its receive loop) alive for as
    /// long as the service exists.
    _ratp: RwLock<Option<Arc<RatpNode>>>,
}

impl fmt::Debug for NameServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameServer")
            .field("bindings", &self.bindings.read().len())
            .finish()
    }
}

impl Default for NameServer {
    fn default() -> Self {
        NameServer {
            bindings: RwLock::new(BTreeMap::new()),
            replicas: RwLock::new(BTreeMap::new()),
            _ratp: RwLock::new(None),
        }
    }
}

impl NameServer {
    /// Create the server and register its RaTP service on this node.
    pub fn install(ratp: &Arc<RatpNode>) -> Arc<NameServer> {
        let server = Arc::new(NameServer::default());
        *server._ratp.write() = Some(Arc::clone(ratp));
        let handler = Arc::clone(&server);
        ratp.register_service(NAMING_PORT, move |req: Request| {
            let reply = match clouds_codec::from_bytes::<NameRequest>(&req.payload) {
                Ok(message) => handler.handle(message),
                Err(_) => NameReply::Bad,
            };
            bytes::Bytes::from(clouds_codec::to_bytes(&reply).expect("reply encodes"))
        });
        server
    }

    fn handle(&self, req: NameRequest) -> NameReply {
        match req {
            NameRequest::Register { name, sysname } => {
                let mut b = self.bindings.write();
                if let std::collections::btree_map::Entry::Vacant(e) = b.entry(name) {
                    e.insert(sysname);
                    NameReply::Ok
                } else {
                    NameReply::AlreadyBound
                }
            }
            NameRequest::Lookup { name } => match self.bindings.read().get(&name) {
                Some(s) => NameReply::Sysname(*s),
                None => NameReply::NotFound,
            },
            NameRequest::Unregister { name } => match self.bindings.write().remove(&name) {
                Some(_) => NameReply::Ok,
                None => NameReply::NotFound,
            },
            NameRequest::List { prefix } => NameReply::Names(
                self.bindings
                    .read()
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix))
                    .map(|(k, v)| (k.clone(), *v))
                    .collect(),
            ),
            NameRequest::RegisterReplicas {
                seg,
                primary,
                backups,
            } => {
                let mut r = self.replicas.write();
                if let std::collections::btree_map::Entry::Vacant(e) = r.entry(seg) {
                    let set = ReplicaSet {
                        primary,
                        backups,
                        epoch: 1,
                    };
                    e.insert(set.clone());
                    NameReply::Replicas(set)
                } else {
                    NameReply::AlreadyBound
                }
            }
            NameRequest::LookupReplicas { seg } => match self.replicas.read().get(&seg) {
                Some(set) => NameReply::Replicas(set.clone()),
                None => NameReply::NotFound,
            },
            NameRequest::Promote {
                seg,
                new_primary,
                epoch,
            } => match self.replicas.write().get_mut(&seg) {
                None => NameReply::NotFound,
                Some(set) => {
                    // Epoch fencing makes re-homing idempotent: only a
                    // strictly newer epoch changes anything, so duplicate
                    // promotion messages (retransmits, two monitors
                    // racing to the same verdict) converge on one
                    // winner. The demoted primary stays in the set as a
                    // backup — a restarted machine can be re-promoted.
                    if epoch > set.epoch {
                        if set.primary != new_primary {
                            let old = set.primary;
                            set.backups.retain(|&b| b != new_primary);
                            set.backups.push(old);
                            set.primary = new_primary;
                        }
                        set.epoch = epoch;
                    }
                    NameReply::Replicas(set.clone())
                }
            },
        }
    }

    /// The directory's current replica set for `seg`, if registered
    /// (diagnostics and co-located callers).
    pub fn replica_set(&self, seg: SysName) -> Option<ReplicaSet> {
        self.replicas.read().get(&seg).cloned()
    }

    /// Number of bindings (diagnostics).
    pub fn len(&self) -> usize {
        self.bindings.read().len()
    }

    /// Whether the server holds no bindings.
    pub fn is_empty(&self) -> bool {
        self.bindings.read().is_empty()
    }
}

/// Client stub for the name server.
#[derive(Clone)]
pub struct NameClient {
    ratp: Arc<RatpNode>,
    server: NodeId,
}

impl fmt::Debug for NameClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NameClient")
            .field("server", &self.server)
            .finish()
    }
}

impl NameClient {
    /// A client that talks to the name server on `server`.
    pub fn new(ratp: &Arc<RatpNode>, server: NodeId) -> NameClient {
        NameClient {
            ratp: Arc::clone(ratp),
            server,
        }
    }

    fn call(&self, req: &NameRequest) -> Result<NameReply, NameError> {
        let payload =
            bytes::Bytes::from(clouds_codec::to_bytes(req).expect("request encodes"));
        match self.ratp.call(self.server, NAMING_PORT, payload) {
            Ok(bytes) => clouds_codec::from_bytes(&bytes)
                .map_err(|e| NameError::Unavailable(format!("bad reply: {e}"))),
            Err(CallError::TimedOut) => {
                Err(NameError::Unavailable("name server timed out".into()))
            }
            Err(e) => Err(NameError::Unavailable(e.to_string())),
        }
    }

    /// Bind a user name to a sysname.
    ///
    /// # Errors
    ///
    /// [`NameError::AlreadyBound`] if taken, [`NameError::Unavailable`]
    /// on transport failure.
    pub fn register(&self, name: &str, sysname: SysName) -> Result<(), NameError> {
        match self.call(&NameRequest::Register {
            name: name.to_string(),
            sysname,
        })? {
            NameReply::Ok => Ok(()),
            NameReply::AlreadyBound => Err(NameError::AlreadyBound(name.to_string())),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }

    /// Translate a user name to its sysname (the `bind` of §2.4).
    ///
    /// # Errors
    ///
    /// [`NameError::NotFound`] if unbound, [`NameError::Unavailable`]
    /// on transport failure.
    pub fn lookup(&self, name: &str) -> Result<SysName, NameError> {
        match self.call(&NameRequest::Lookup {
            name: name.to_string(),
        })? {
            NameReply::Sysname(s) => Ok(s),
            NameReply::NotFound => Err(NameError::NotFound(name.to_string())),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }

    /// Remove a binding.
    ///
    /// # Errors
    ///
    /// [`NameError::NotFound`] if unbound, [`NameError::Unavailable`]
    /// on transport failure.
    pub fn unregister(&self, name: &str) -> Result<(), NameError> {
        match self.call(&NameRequest::Unregister {
            name: name.to_string(),
        })? {
            NameReply::Ok => Ok(()),
            NameReply::NotFound => Err(NameError::NotFound(name.to_string())),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }

    /// List bindings whose names start with `prefix`.
    ///
    /// # Errors
    ///
    /// [`NameError::Unavailable`] on transport failure.
    pub fn list(&self, prefix: &str) -> Result<Vec<(String, SysName)>, NameError> {
        match self.call(&NameRequest::List {
            prefix: prefix.to_string(),
        })? {
            NameReply::Names(names) => Ok(names),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }

    /// Record `seg`'s replica set (epoch 1).
    ///
    /// # Errors
    ///
    /// [`NameError::AlreadyBound`] if the segment already has a set,
    /// [`NameError::Unavailable`] on transport failure.
    pub fn register_replicas(
        &self,
        seg: SysName,
        primary: NodeId,
        backups: &[NodeId],
    ) -> Result<ReplicaSet, NameError> {
        match self.call(&NameRequest::RegisterReplicas {
            seg,
            primary: primary.0,
            backups: backups.iter().map(|n| n.0).collect(),
        })? {
            NameReply::Replicas(set) => Ok(set),
            NameReply::AlreadyBound => Err(NameError::AlreadyBound(seg.to_string())),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetch `seg`'s current replica set.
    ///
    /// # Errors
    ///
    /// [`NameError::NotFound`] if the segment has no set,
    /// [`NameError::Unavailable`] on transport failure.
    pub fn lookup_replicas(&self, seg: SysName) -> Result<ReplicaSet, NameError> {
        match self.call(&NameRequest::LookupReplicas { seg })? {
            NameReply::Replicas(set) => Ok(set),
            NameReply::NotFound => Err(NameError::NotFound(seg.to_string())),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }

    /// Re-home `seg` onto `new_primary` at `epoch`, returning the set as
    /// the directory records it afterwards — unchanged if the epoch was
    /// stale (idempotent duplicate).
    ///
    /// # Errors
    ///
    /// [`NameError::NotFound`] if the segment has no set,
    /// [`NameError::Unavailable`] on transport failure.
    pub fn promote(
        &self,
        seg: SysName,
        new_primary: NodeId,
        epoch: u64,
    ) -> Result<ReplicaSet, NameError> {
        match self.call(&NameRequest::Promote {
            seg,
            new_primary: new_primary.0,
            epoch,
        })? {
            NameReply::Replicas(set) => Ok(set),
            NameReply::NotFound => Err(NameError::NotFound(seg.to_string())),
            other => Err(NameError::Unavailable(format!("unexpected reply {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clouds_ratp::RatpConfig;
    use clouds_simnet::{CostModel, Network};

    fn bed() -> (Network, Arc<NameServer>, NameClient) {
        let net = Network::new(CostModel::zero());
        let sn = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
        let server = NameServer::install(&sn);
        let cn = RatpNode::spawn(net.register(NodeId(2)).unwrap(), RatpConfig::default());
        let client = NameClient::new(&cn, NodeId(1));
        (net, server, client)
    }

    fn s(n: u64) -> SysName {
        SysName::from_parts(5, n)
    }

    #[test]
    fn register_lookup_unregister() {
        let (_net, server, client) = bed();
        client.register("Rect01", s(1)).unwrap();
        assert_eq!(client.lookup("Rect01").unwrap(), s(1));
        assert_eq!(server.len(), 1);
        client.unregister("Rect01").unwrap();
        assert!(matches!(
            client.lookup("Rect01"),
            Err(NameError::NotFound(_))
        ));
        assert!(server.is_empty());
    }

    #[test]
    fn double_register_rejected() {
        let (_net, _server, client) = bed();
        client.register("X", s(1)).unwrap();
        assert!(matches!(
            client.register("X", s(2)),
            Err(NameError::AlreadyBound(_))
        ));
        // Original binding intact.
        assert_eq!(client.lookup("X").unwrap(), s(1));
    }

    #[test]
    fn unregister_missing_is_not_found() {
        let (_net, _server, client) = bed();
        assert!(matches!(
            client.unregister("ghost"),
            Err(NameError::NotFound(_))
        ));
    }

    #[test]
    fn service_keeps_transport_alive() {
        // Regression test: `bed()` drops its local Arc<RatpNode>; the
        // NameServer must keep the transport's receive loop alive, even
        // when the first call arrives much later.
        for i in 0..3 {
            let (_net, _server, client) = bed();
            std::thread::sleep(std::time::Duration::from_millis(60));
            client
                .register("probe", s(1))
                .unwrap_or_else(|e| panic!("bed {i}: {e}"));
        }
    }

    #[test]
    fn list_by_prefix() {
        let (_net, _server, client) = bed();
        client.register("app/a", s(1)).unwrap();
        client.register("app/b", s(2)).unwrap();
        client.register("sys/x", s(3)).unwrap();
        let apps = client.list("app/").unwrap();
        assert_eq!(apps.len(), 2);
        assert_eq!(apps[0].0, "app/a");
        assert_eq!(apps[1].0, "app/b");
        let all = client.list("").unwrap();
        assert_eq!(all.len(), 3);
        assert!(client.list("zzz").unwrap().is_empty());
    }

    #[test]
    fn replica_set_register_lookup() {
        let (_net, server, client) = bed();
        let seg = s(7);
        let set = client
            .register_replicas(seg, NodeId(100), &[NodeId(101), NodeId(102)])
            .unwrap();
        assert_eq!(set.primary_node(), NodeId(100));
        assert_eq!(set.backup_nodes(), vec![NodeId(101), NodeId(102)]);
        assert_eq!(set.epoch, 1);
        assert_eq!(client.lookup_replicas(seg).unwrap(), set);
        assert_eq!(server.replica_set(seg).unwrap(), set);
        // A second registration is refused, the first is intact.
        assert!(matches!(
            client.register_replicas(seg, NodeId(103), &[]),
            Err(NameError::AlreadyBound(_))
        ));
        assert_eq!(client.lookup_replicas(seg).unwrap().primary, 100);
        // Unknown segments have no set.
        assert!(matches!(
            client.lookup_replicas(s(8)),
            Err(NameError::NotFound(_))
        ));
    }

    #[test]
    fn promotion_is_idempotent_under_duplicates() {
        let (_net, _server, client) = bed();
        let seg = s(9);
        client
            .register_replicas(seg, NodeId(100), &[NodeId(101), NodeId(102)])
            .unwrap();

        // First promotion wins: backup 101 becomes primary at epoch 2,
        // the demoted primary joins the backups.
        let set = client.promote(seg, NodeId(101), 2).unwrap();
        assert_eq!(set.primary_node(), NodeId(101));
        assert_eq!(set.backup_nodes(), vec![NodeId(102), NodeId(100)]);
        assert_eq!(set.epoch, 2);

        // The same promotion delivered again (retransmit, or a second
        // monitor reaching the same verdict): byte-identical outcome.
        let dup = client.promote(seg, NodeId(101), 2).unwrap();
        assert_eq!(dup, set);

        // A *stale* promotion (lower epoch, different target) is fenced
        // off entirely — the directory does not regress.
        let stale = client.promote(seg, NodeId(102), 2).unwrap();
        assert_eq!(stale, set);
        let staler = client.promote(seg, NodeId(100), 1).unwrap();
        assert_eq!(staler, set);

        // A newer epoch can re-home again, including back onto the
        // original (restarted) primary.
        let back = client.promote(seg, NodeId(100), 3).unwrap();
        assert_eq!(back.primary_node(), NodeId(100));
        assert_eq!(back.epoch, 3);
        assert_eq!(back.backup_nodes(), vec![NodeId(102), NodeId(101)]);

        // Promoting an unknown segment is NotFound, not a silent create.
        assert!(matches!(
            client.promote(s(10), NodeId(100), 5),
            Err(NameError::NotFound(_))
        ));
    }

    #[test]
    fn lookup_on_dead_server_is_unavailable() {
        let net = Network::new(CostModel::zero());
        let _sn = RatpNode::spawn(net.register(NodeId(1)).unwrap(), RatpConfig::default());
        let cn = RatpNode::spawn(
            net.register(NodeId(2)).unwrap(),
            RatpConfig {
                max_retries: 3,
                retry_interval: std::time::Duration::from_millis(5),
                ..RatpConfig::default()
            },
        );
        let client = NameClient::new(&cn, NodeId(1));
        net.crash(NodeId(1));
        assert!(matches!(
            client.lookup("x"),
            Err(NameError::Unavailable(_))
        ));
    }
}
