//! `clouds-lint` CLI.
//!
//! ```text
//! clouds-lint [--deny] [--json] [--sarif PATH] [ROOT]
//! ```
//!
//! Lints the workspace rooted at `ROOT` (default: the current
//! directory). `--json` emits stable machine-readable JSON instead of
//! the human table; `--sarif PATH` additionally writes a SARIF 2.1.0
//! report to `PATH` (written even when there are no findings, so CI can
//! upload it unconditionally); `--deny` exits non-zero when there are
//! findings (the CI mode). Exit codes: 0 clean (or findings without
//! `--deny`), 1 findings under `--deny`, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut sarif: Option<PathBuf> = None;
    let mut sarif_next = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        if sarif_next {
            sarif = Some(PathBuf::from(&arg));
            sarif_next = false;
            continue;
        }
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--sarif" => sarif_next = true,
            "--help" | "-h" => {
                eprintln!("usage: clouds-lint [--deny] [--json] [--sarif PATH] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("clouds-lint: unknown flag `{other}`");
                return ExitCode::from(2);
            }
            path => {
                if root.is_some() {
                    eprintln!("clouds-lint: more than one ROOT given");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(path));
            }
        }
    }
    if sarif_next {
        eprintln!("clouds-lint: --sarif needs a PATH");
        return ExitCode::from(2);
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let cfg = clouds_lint::Config::clouds();
    let findings = match clouds_lint::run(&root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("clouds-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(path) = sarif {
        if let Err(e) = std::fs::write(&path, clouds_lint::render_sarif(&findings)) {
            eprintln!("clouds-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json {
        print!("{}", clouds_lint::render_json(&findings));
    } else {
        print!("{}", clouds_lint::render_table(&findings));
    }
    if deny && !findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
