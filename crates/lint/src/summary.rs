//! Phase 1 of the inter-procedural analyzer: per-function summaries.
//!
//! One pass over each function body (the same lexed token stream every
//! rule sees) records everything the phase-2 rules need to reason
//! *across* functions without re-scanning code:
//!
//! * **calls made** — every plausible call site, with the lock guards
//!   held at that moment and whether the callee name is on the
//!   ubiquitous-name stoplist (phase 2 never follows stoplisted names);
//! * **guards acquired/dropped** — the `parking_lot` vocabulary
//!   (`.lock()`, `.read()`, `.write()`), with the same structural
//!   lifetime model the lock-order rule has always used (statement
//!   temporaries, `let` bindings, `match`/`if`/`while` scrutinee
//!   extension, early `drop(g)`);
//! * **protocol sites** — `log.append(…)` write-ahead appends,
//!   `check_serving(…)` epoch-fence checks, segment-store touches and
//!   durable mutations, reply-enum constructions (ack-returning paths),
//!   and blocking transport/channel operations.
//!
//! Phase 2 ([`Summaries::reaches`]) propagates these facts over the
//! *name-matched* call graph: a call to `f` pulls in the summary of
//! every workspace function named `f` (restricted to the enclosing
//! `impl` type's own methods when the receiver is literally `self` and
//! such a method exists). Propagation is bounded-depth and cycle-safe —
//! a breadth-first walk with a visited set, cut off at
//! [`crate::Config::max_call_depth`] hops — and returns the call-chain
//! witness so findings can name the path, not just the endpoints.
//!
//! Known soundness holes, pinned by `tests/summary.rs` so they stay
//! documented rather than latent: name matching merges methods with
//! free functions (and same-named methods on unrelated types, when the
//! receiver is not `self`); calls inside closures — including closures
//! handed to `scoped` threads — are attributed to the *enclosing*
//! function (right for guard lifetimes, which do not cross the spawn,
//! but it also means a guard taken outside a closure appears held at
//! call sites inside it); and the depth bound silently truncates
//! chains longer than `max_call_depth`.

use crate::lexer::{Tok, Token};
use crate::{functions, Config, SourceFile};
use std::collections::BTreeMap;

/// Keywords and constructors that can precede a `(` without being a
/// call worth recording.
pub(crate) const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "move", "in", "as", "ref", "mut", "where", "impl", "dyn", "unsafe", "async", "await", "Some",
    "None", "Ok", "Err", "Box", "Vec", "String", "Arc", "Rc",
];

/// Method names so ubiquitous (std trait impls, accessors) that
/// name-matching them to workspace functions is pure noise: a call to
/// `x.len()` must not pull in the summary of every `fn len` in the
/// tree. Such leaf accessors still contribute their own direct facts
/// when analyzed as definitions.
pub(crate) const CALL_STOPLIST: &[&str] = &[
    "len",
    "is_empty",
    "fmt",
    "clone",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "default",
    "to_string",
    "as_ref",
    "as_mut",
    "as_str",
    "deref",
    "deref_mut",
    "index",
    "from",
    "into",
    "drop",
    "new",
    "finish",
    // `ids.join("")` on a slice of strings must not match a workspace
    // thread-pool `join` (which blocks on a channel recv).
    "join",
    // Collection/accessor vocabulary: `.get(`/`.insert(`/… on a plain
    // HashMap would otherwise name-match same-named workspace methods
    // (SegmentStore::get, Counter::inc, …) and fabricate edges.
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "clear",
    "entry",
    "inc",
    "observe",
    "record",
    "push",
    "extend",
    "retain",
    "take",
    // Atomics vocabulary: `now_ns.load(…)` must not match `ObjectMeta::load`.
    "load",
    "store",
    // Channel vocabulary: `tx.send(…)`/`rx.recv()` must not match
    // `Endpoint::send` and friends. (They still register as *direct*
    // blocking sites — see `CallSite::blocking_direct`.)
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
];

#[derive(Debug, Clone, Copy, PartialEq)]
enum GuardKind {
    /// Released at the next `;` at acquisition depth.
    Stmt,
    /// Released when brace depth drops below `depth`.
    Block,
}

#[derive(Debug, Clone)]
struct Guard {
    key: String,
    kind: GuardKind,
    depth: i32,
    /// `let` binding name, for `drop(name)` release.
    bound: Option<String>,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Simple callee name (`flush`, `check_serving`, `call_many`, …).
    pub callee: String,
    /// Lock keys held when the call is made (lock-order keys).
    pub held: Vec<String>,
    pub line: u32,
    /// Token index in the file's runtime stream — orders sites within
    /// a body and slices them into match arms.
    pub tok: usize,
    /// Callee name is on [`CALL_STOPLIST`]: phase 2 must not follow it.
    pub stoplisted: bool,
    /// Call was written `recv.name(…)` rather than `name(…)`.
    pub method_form: bool,
    /// The receiver is literally `self` (enables impl-aware matching).
    pub recv_self: bool,
    /// The callee is a blocking transport/channel primitive
    /// (`.call(…)`, `.call_many(…)`, `.send(…)`, …) — matched by name
    /// in method form, regardless of the stoplist.
    pub blocking_direct: bool,
}

/// A site recorded with its token index and line.
#[derive(Debug, Clone)]
pub struct Site {
    pub tok: usize,
    pub line: u32,
    /// What was seen: the mutator method, the reply variant path, … —
    /// used in messages.
    pub what: String,
}

/// A direct lock acquisition.
#[derive(Debug, Clone)]
pub struct LockSite {
    pub key: String,
    pub line: u32,
}

/// A held→acquired nesting edge observed inside one function.
#[derive(Debug, Clone)]
pub struct NestEdge {
    pub from: String,
    pub to: String,
    pub line: u32,
}

/// Everything phase 2 knows about one function.
#[derive(Debug, Clone)]
pub struct FnSummary {
    pub name: String,
    pub impl_type: Option<String>,
    /// Root-relative path of the defining file.
    pub file: String,
    /// Index of that file in the `files` slice the summaries were built
    /// from (for rules that need to re-slice the token stream).
    pub file_idx: usize,
    pub line: u32,
    /// Token range of the body in the file's runtime stream.
    pub body: (usize, usize),
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockSite>,
    pub nest_edges: Vec<NestEdge>,
    /// Direct `log.append(…)` / `log().append(…)` write-ahead appends.
    pub log_appends: Vec<Site>,
    /// Direct epoch-fence checks (`check_serving(…)`).
    pub fence_checks: Vec<Site>,
    /// Direct segment-store touches (`store.m(…)` / `store().m(…)`).
    pub store_touches: Vec<Site>,
    /// Direct durable mutations (store create/destroy, `write_page`, …).
    pub durable_mutations: Vec<Site>,
    /// Direct reply-enum constructions other than the error variants
    /// (`DsmReply::Ok`, `CommitReply::Committed`, …) — ack-returning
    /// paths.
    pub acks: Vec<Site>,
}

impl FnSummary {
    /// Does this function itself contain a blocking transport/channel
    /// call?
    pub fn blocks_directly(&self) -> bool {
        self.calls.iter().any(|c| c.blocking_direct)
    }

    /// The first direct blocking site, for witness messages.
    pub fn first_blocking(&self) -> Option<&CallSite> {
        self.calls.iter().find(|c| c.blocking_direct)
    }
}

/// The phase-1 result: every function summary plus a name index.
pub struct Summaries {
    pub fns: Vec<FnSummary>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Summaries {
    /// Build summaries for every `src/` function in `files`.
    pub fn build(files: &[SourceFile], cfg: &Config) -> Summaries {
        let mut fns = Vec::new();
        for (file_idx, sf) in files.iter().enumerate() {
            if !sf.info.is_src {
                continue;
            }
            let toks = &sf.runtime_tokens;
            for f in functions(toks) {
                fns.push(summarize(toks, &f, &sf.info.rel, file_idx, cfg));
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Summaries { fns, by_name }
    }

    /// Candidate definitions for a call site: every workspace function
    /// with the callee's name — narrowed to the enclosing `impl` type's
    /// own methods when the receiver is literally `self` and the type
    /// defines one (the only type information a lexer-level analysis
    /// has).
    pub fn candidates(&self, site: &CallSite, caller: &FnSummary) -> Vec<usize> {
        let Some(all) = self.by_name.get(&site.callee) else {
            return Vec::new();
        };
        if site.recv_self {
            if let Some(t) = &caller.impl_type {
                let own: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| self.fns[i].impl_type.as_deref() == Some(t))
                    .collect();
                if !own.is_empty() {
                    return own;
                }
            }
        }
        all.clone()
    }

    /// Phase 2: breadth-first reachability from the function at `start`
    /// over the name-matched call graph, bounded at `max_depth` hops
    /// and cycle-safe (visited set). Returns the witness chain of
    /// function names, `start` first, ending at the first function for
    /// which `pred` holds — or `None` when nothing within the bound
    /// satisfies it. Stoplisted call sites are never followed.
    pub fn reaches<F>(&self, start: usize, max_depth: usize, pred: F) -> Option<Vec<String>>
    where
        F: Fn(&FnSummary) -> bool,
    {
        let mut visited = vec![false; self.fns.len()];
        // (fn index, parent position in `trail`), trail records the BFS
        // tree so the witness can be unwound without storing paths.
        let mut trail: Vec<(usize, Option<usize>)> = vec![(start, None)];
        visited[start] = true;
        let mut frontier = vec![0usize];
        let mut depth = 0usize;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &pos in &frontier {
                let (idx, _) = trail[pos];
                if pred(&self.fns[idx]) {
                    // Unwind the witness chain.
                    let mut chain = Vec::new();
                    let mut cur = Some(pos);
                    while let Some(p) = cur {
                        chain.push(self.fns[trail[p].0].name.clone());
                        cur = trail[p].1;
                    }
                    chain.reverse();
                    return Some(chain);
                }
                if depth == max_depth {
                    continue;
                }
                let caller = &self.fns[idx];
                for site in &caller.calls {
                    if site.stoplisted {
                        continue;
                    }
                    for cand in self.candidates(site, caller) {
                        if !visited[cand] {
                            visited[cand] = true;
                            trail.push((cand, Some(pos)));
                            next.push(trail.len() - 1);
                        }
                    }
                }
            }
            frontier = next;
            depth += 1;
        }
        None
    }

    /// Does any non-stoplisted call inside `range` of `caller` reach a
    /// function satisfying `pred` (bounded by `max_depth`)? Returns the
    /// full witness (caller's callee first). Direct facts of `caller`
    /// itself are the rule's business — this only follows calls.
    pub fn calls_reach<F>(
        &self,
        caller: &FnSummary,
        range: (usize, usize),
        max_depth: usize,
        pred: F,
    ) -> Option<Vec<String>>
    where
        F: Fn(&FnSummary) -> bool + Copy,
    {
        for site in &caller.calls {
            if site.stoplisted || site.tok < range.0 || site.tok >= range.1 {
                continue;
            }
            for cand in self.candidates(site, caller) {
                if let Some(chain) = self.reaches(cand, max_depth, pred) {
                    return Some(chain);
                }
            }
        }
        None
    }
}

/// One arm of a `match` over a wire enum inside a handler body.
#[derive(Debug, Clone)]
pub struct MatchArm {
    pub variant: String,
    pub line: u32,
    /// Token range of the arm body (after `=>`, up to the next arm or
    /// the end of the handler body).
    pub range: (usize, usize),
}

/// Slice a handler body into the arms of its `match` over `enum_name`.
///
/// An arm starts at `Enum::Variant` (optionally followed by one
/// balanced `{…}`/`(…)` binding pattern and `|` alternations) whose
/// pattern ends in `=>`; its body extends to the next arm start or the
/// end of the handler body. Constructions of the enum inside call
/// arguments never end in `=>`, so they do not open phantom arms.
pub fn match_arms(toks: &[Token], body: (usize, usize), enum_name: &str) -> Vec<MatchArm> {
    let end = body.1.min(toks.len());
    let mut starts: Vec<(String, u32, usize, usize)> = Vec::new(); // (variant, line, pattern_tok, body_tok)
    let mut i = body.0;
    while i + 2 < end {
        if toks[i].kind.is_ident(enum_name)
            && matches!(toks[i + 1].kind, Tok::PathSep)
            && toks[i + 2].kind.ident().is_some()
        {
            let variant = toks[i + 2].kind.ident().unwrap().to_string();
            if let Some(arrow) = arm_arrow(toks, i + 3, end) {
                starts.push((variant, toks[i].line, i, arrow));
                i = arrow;
                continue;
            }
        }
        i += 1;
    }
    let mut arms = Vec::new();
    for (k, (variant, line, _, body_tok)) in starts.iter().enumerate() {
        let arm_end = starts.get(k + 1).map_or(end, |(_, _, pat, _)| *pat);
        arms.push(MatchArm {
            variant: variant.clone(),
            line: *line,
            range: (*body_tok, arm_end),
        });
    }
    arms
}

/// From just past a variant pattern, skip one balanced `{…}`/`(…)`
/// payload and `|` alternations; return the index *after* `=>` if this
/// really is a match arm.
fn arm_arrow(toks: &[Token], mut j: usize, end: usize) -> Option<usize> {
    loop {
        match toks.get(j).map(|t| &t.kind) {
            Some(Tok::Punct('{')) | Some(Tok::Punct('(')) => {
                let open = if toks[j].kind.is_punct('{') { '{' } else { '(' };
                let close = if open == '{' { '}' } else { ')' };
                let mut d = 0i32;
                while j < end {
                    if toks[j].kind.is_punct(open) {
                        d += 1;
                    } else if toks[j].kind.is_punct(close) {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                j += 1;
            }
            Some(Tok::Punct('|')) => {
                j += 1;
                while j < end
                    && (toks[j].kind.ident().is_some() || matches!(toks[j].kind, Tok::PathSep))
                {
                    j += 1;
                }
            }
            Some(Tok::Punct('=')) if toks.get(j + 1).is_some_and(|t| t.kind.is_punct('>')) => {
                return Some(j + 2);
            }
            _ => return None,
        }
    }
}

/// Build one function's summary: a single scan of its body tracking
/// guard lifetimes and recording every protocol-relevant site.
fn summarize(
    toks: &[Token],
    f: &crate::FnSpan,
    file: &str,
    file_idx: usize,
    cfg: &Config,
) -> FnSummary {
    let (bs, be) = f.body;
    let end = be.min(toks.len());
    let mut out = FnSummary {
        name: f.name.clone(),
        impl_type: f.impl_type.clone(),
        file: file.to_string(),
        file_idx,
        line: toks
            .get(f.params.0.saturating_sub(2))
            .map_or(0, |t| t.line),
        body: f.body,
        calls: Vec::new(),
        locks: Vec::new(),
        nest_edges: Vec::new(),
        log_appends: Vec::new(),
        fence_checks: Vec::new(),
        store_touches: Vec::new(),
        durable_mutations: Vec::new(),
        acks: Vec::new(),
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32; // brace depth relative to body start

    let mut i = bs;
    while i < end {
        match &toks[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            // `;` ends a statement; `,` ends a match arm (and, as a
            // conservative side effect, an argument position — losing a
            // same-statement edge, never inventing one).
            Tok::Punct(';') | Tok::Punct(',') => {
                guards.retain(|g| !(g.kind == GuardKind::Stmt && g.depth >= depth));
            }
            // `drop(name)` releases a let-bound guard early.
            Tok::Ident(id)
                if id == "drop" && toks.get(i + 1).is_some_and(|t| t.kind.is_punct('(')) =>
            {
                if let Some(Tok::Ident(arg)) = toks.get(i + 2).map(|t| &t.kind) {
                    if toks.get(i + 3).is_some_and(|t| t.kind.is_punct(')')) {
                        guards.retain(|g| g.bound.as_deref() != Some(arg.as_str()));
                    }
                }
            }
            // Acquisition: `<chain> . lock|read|write ( )`
            Tok::Punct('.')
                if matches!(
                    toks.get(i + 1).and_then(|t| t.kind.ident()),
                    Some("lock" | "read" | "write")
                ) && toks.get(i + 2).is_some_and(|t| t.kind.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.kind.is_punct(')')) =>
            {
                let line = toks[i + 1].line;
                if let Some((key, chain_start)) = receiver_key(toks, i, f) {
                    for g in &guards {
                        out.nest_edges.push(NestEdge {
                            from: g.key.clone(),
                            to: key.clone(),
                            line,
                        });
                    }
                    out.locks.push(LockSite {
                        key: key.clone(),
                        line,
                    });
                    // `m.lock().remove(x)` — the chain continuing past
                    // the guard call means the guard is a temporary:
                    // a `let` binds the chain's *result*, not the guard.
                    let chained = toks.get(i + 4).is_some_and(|t| t.kind.is_punct('.'));
                    let (kind, gdepth, bound) = binding_of(toks, chain_start, bs, depth, chained);
                    guards.push(Guard {
                        key,
                        kind,
                        depth: gdepth,
                        bound,
                    });
                }
                i += 4;
                continue;
            }
            // Call site: `name (` — not a definition, macro, or
            // constructor.
            Tok::Ident(id)
                if toks.get(i + 1).is_some_and(|t| t.kind.is_punct('('))
                    && !KEYWORDS.contains(&id.as_str())
                    && id.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                    && !(i > 0 && toks[i - 1].kind.is_ident("fn")) =>
            {
                let method_form = i > bs && toks[i - 1].kind.is_punct('.');
                let recv_self = method_form
                    && i >= 2
                    && toks[i - 2].kind.is_ident("self")
                    && !(i >= 3 && toks[i - 3].kind.is_punct('.'));
                let site = CallSite {
                    callee: id.clone(),
                    held: guards.iter().map(|g| g.key.clone()).collect(),
                    line: toks[i].line,
                    tok: i,
                    stoplisted: CALL_STOPLIST.contains(&id.as_str()),
                    method_form,
                    recv_self,
                    blocking_direct: method_form
                        && cfg.blocking_methods.iter().any(|m| m == id),
                };
                // Protocol sites keyed off the same call shape.
                if cfg.fence_fns.iter().any(|m| m == id) {
                    out.fence_checks.push(Site {
                        tok: i,
                        line: toks[i].line,
                        what: format!("{id}(…)"),
                    });
                }
                if method_form
                    && cfg.log_methods.iter().any(|m| m == id)
                    && receiver_is(toks, i, &cfg.log_receivers)
                {
                    out.log_appends.push(Site {
                        tok: i,
                        line: toks[i].line,
                        what: format!("log.{id}(…)"),
                    });
                }
                if cfg.mutator_methods.iter().any(|m| m == id) {
                    out.durable_mutations.push(Site {
                        tok: i,
                        line: toks[i].line,
                        what: format!("{id}(…)"),
                    });
                }
                if method_form && receiver_is(toks, i, &cfg.store_receivers) {
                    out.store_touches.push(Site {
                        tok: i,
                        line: toks[i].line,
                        what: format!("store.{id}(…)"),
                    });
                    if cfg.store_mutator_methods.iter().any(|m| m == id) {
                        out.durable_mutations.push(Site {
                            tok: i,
                            line: toks[i].line,
                            what: format!("store.{id}(…)"),
                        });
                    }
                }
                out.calls.push(site);
            }
            // Reply-enum construction or pattern: `Enum :: Variant`.
            Tok::Ident(id) if matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::PathSep)) => {
                if let Some((_, errs)) = cfg
                    .reply_enums
                    .iter()
                    .find(|(e, _)| e == id)
                {
                    if let Some(Tok::Ident(variant)) = toks.get(i + 2).map(|t| &t.kind) {
                        if !errs.iter().any(|e| e == variant) {
                            out.acks.push(Site {
                                tok: i,
                                line: toks[i].line,
                                what: format!("{id}::{variant}"),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// True when the method call at token `i` (the method name, preceded by
/// `.`) is on a receiver whose last segment is one of `names` — either
/// a field (`self.log.append`) or a getter (`self.dsm.log().append`).
fn receiver_is(toks: &[Token], i: usize, names: &[&str]) -> bool {
    if i < 2 || !toks[i - 1].kind.is_punct('.') {
        return false;
    }
    match &toks[i - 2].kind {
        Tok::Ident(id) => names.iter().any(|n| n == id),
        Tok::Punct(')') if i >= 4 && toks[i - 3].kind.is_punct('(') => {
            matches!(&toks[i - 4].kind, Tok::Ident(id) if names.iter().any(|n| n == id))
        }
        _ => false,
    }
}

/// Key the receiver chain ending at the `.` before lock/read/write.
/// Returns (key, index of the chain's first token).
///
/// Indexed receivers — the stripe pattern `self.shards[i].pages.lock()`
/// — are traversed through the `[...]` (any balanced index expression)
/// and keyed with the whole path, index abstracted to `[_]`:
/// `DsmServer.shards[_].pages`. Every element of a stripe array maps to
/// the one key, which is exactly the right approximation for the
/// stripe discipline (never hold two stripes of one family; sweeps
/// visit stripes one at a time), because holding one stripe while
/// taking another of the same family then shows up as a self-loop.
pub(crate) fn receiver_key(
    toks: &[Token],
    dot: usize,
    f: &crate::FnSpan,
) -> Option<(String, usize)> {
    // Walk back over `ident ( [index] )? ( . ident ( [index] )? )*`,
    // tolerating interposed `()` for calls like `.as_ref()` is NOT
    // attempted: a `)` aborts.
    let mut idx = dot;
    let mut chain: Vec<String> = Vec::new();
    let mut indexed = false;
    loop {
        if idx == 0 {
            break;
        }
        let prev = &toks[idx - 1];
        match &prev.kind {
            Tok::Ident(id) => {
                chain.push(id.clone());
                idx -= 1;
                // Continue only over a further `.`
                if idx > 0 && toks[idx - 1].kind.is_punct('.') {
                    idx -= 1;
                    continue;
                }
                break;
            }
            // `shards[i]` (or any balanced index expression): skip back
            // to the matching `[` and abstract the index to `[_]`.
            Tok::Punct(']') => {
                let mut bdepth = 1i32;
                let mut k = idx - 1;
                while k > 0 && bdepth > 0 {
                    k -= 1;
                    match &toks[k].kind {
                        Tok::Punct('[') => bdepth -= 1,
                        Tok::Punct(']') => bdepth += 1,
                        _ => {}
                    }
                }
                if bdepth != 0 {
                    break; // unmatched bracket: give up on the chain
                }
                chain.push("[_]".to_string());
                indexed = true;
                idx = k; // toks[k] is `[`; the array ident precedes it
            }
            _ => break,
        }
    }
    // Fuse `[_]` markers onto the identifier they index.
    chain.reverse();
    let mut parts: Vec<String> = Vec::new();
    for c in chain {
        if c == "[_]" {
            match parts.last_mut() {
                Some(last) => last.push_str("[_]"),
                None => return None, // chain started at the bracket
            }
        } else {
            parts.push(c);
        }
    }
    if parts.is_empty() {
        return None;
    }
    let key = if indexed {
        // Stripe keys carry the whole path: `pages` alone would merge
        // every stripe family member with any same-named plain field.
        if parts[0] == "self" && parts.len() >= 2 {
            match &f.impl_type {
                Some(t) => format!("{t}.{}", parts[1..].join(".")),
                None => parts[1..].join("."),
            }
        } else {
            parts.join(".")
        }
    } else if parts[0] == "self" && parts.len() >= 2 {
        match &f.impl_type {
            Some(t) => format!("{t}.{}", parts.last().unwrap()),
            None => parts.last().unwrap().clone(),
        }
    } else {
        parts.last().unwrap().clone()
    };
    Some((key, idx))
}

/// How long does the guard acquired by the expression starting at
/// `chain_start` live? Scans the statement prefix (back to the nearest
/// `;`/`{`/`}`) for, in priority order: a `match`/`if`/`while`
/// scrutinee position (guard lives for the construct's block — Rust
/// extends scrutinee temporaries, which is exactly the
/// `if let Some(x) = m.lock().get(…)` deadlock footgun), a `let … =`
/// binding (guard lives to end of the enclosing block — but only when
/// the `let` binds the guard itself, i.e. `chained` is false), or
/// anything else (temporary: dies at end of statement).
fn binding_of(
    toks: &[Token],
    chain_start: usize,
    body_start: usize,
    depth: i32,
    chained: bool,
) -> (GuardKind, i32, Option<String>) {
    let lo = chain_start.saturating_sub(16).max(body_start);
    let mut saw_eq = false;
    let mut wrapped = false;
    let mut let_name: Option<String> = None;
    let mut j = chain_start;
    while j > lo {
        j -= 1;
        match &toks[j].kind {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            Tok::Ident(id) if id == "match" || id == "while" || id == "if" => {
                return (GuardKind::Block, depth + 1, None);
            }
            // A paren between the lock chain and the `=` means the
            // chain sits inside a call's argument list —
            // `let x = take(&mut *m.lock())` binds the call's result,
            // not the guard, which stays a statement temporary.
            Tok::Punct('(') | Tok::Punct(')') if !saw_eq => wrapped = true,
            Tok::Punct('=') if !saw_eq => {
                saw_eq = true;
                if j >= 1 {
                    if let Tok::Ident(name) = &toks[j - 1].kind {
                        let mut k = j - 1;
                        if k > 0 && toks[k - 1].kind.is_ident("mut") {
                            k -= 1;
                        }
                        if k > 0 && toks[k - 1].kind.is_ident("let") {
                            let_name = Some(name.clone());
                        }
                    }
                }
            }
            _ => {}
        }
    }
    match let_name {
        Some(name) if !chained && !wrapped => (GuardKind::Block, depth, Some(name)),
        _ => (GuardKind::Stmt, depth, None),
    }
}
