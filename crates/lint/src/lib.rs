//! `clouds-lint` — workspace static analysis for the Clouds reproduction.
//!
//! The repo's core guarantees are *global* properties no unit test pins
//! down: byte-identical same-seed runs (determinism), deadlock-free
//! lock acquisition across the IsiBa + `parking_lot` mix, and wire/obs
//! contracts (every packet kind handled, every metric name in the
//! checked-in manifest). The chaos harness can only catch violations it
//! gets lucky enough to schedule; this crate enforces them statically,
//! the way the paper's Clouds kernel enforces consistency invariants by
//! construction rather than convention.
//!
//! Design: a hand-rolled lexer ([`lexer`]) feeds token-pattern rules
//! ([`rules`]) — no rustc plumbing, no dependencies, so the linter
//! builds in seconds and runs first in CI. Findings are heuristic by
//! design; a `// lint:allow(rule): reason` comment on (or directly
//! above) the offending line suppresses one, and the reason documents
//! why the invariant still holds.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod summary;

use lexer::{LexedFile, Tok, Token};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One lint finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Root-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    /// Stable rule identifier (the name `lint:allow(...)` takes).
    pub rule: &'static str,
    pub message: String,
}

/// Where a file sits in the workspace layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInfo {
    /// Root-relative path, `/`-separated.
    pub rel: String,
    /// `crates/<name>/…` → `<name>`.
    pub crate_name: Option<String>,
    /// True for `src/` library code (rules about runtime behavior apply);
    /// false for `tests/`, `benches/`, `examples/`.
    pub is_src: bool,
}

/// A lexed file bundled with its layout info and a token stream with
/// `#[cfg(test)]` / `#[test]` items removed.
pub struct SourceFile {
    pub info: FileInfo,
    pub lexed: LexedFile,
    /// Tokens outside test-gated items — what runtime-behavior rules see.
    pub runtime_tokens: Vec<Token>,
}

/// Dispatch-conformance spec: every variant of `enum_name` (defined in
/// the file whose root-relative path ends with `def_suffix`) must
/// appear as a match arm in at least one handler file.
#[derive(Debug, Clone)]
pub struct DispatchSpec {
    pub enum_name: &'static str,
    pub def_suffix: &'static str,
    pub handler_suffixes: &'static [&'static str],
}

/// WAL-before-ack conformance spec: every arm of `handler_type ::
/// handler_method`'s match over the wire request enum that (transitively)
/// mutates durable state *and* constructs a non-error `reply_enum`
/// variant must also reach `log.append`.
#[derive(Debug, Clone)]
pub struct AckHandlerSpec {
    /// `impl` type of the handler (`DsmServer`, `CommitParticipant`).
    pub handler_type: &'static str,
    /// Handler method name (`handle`).
    pub handler_method: &'static str,
    /// Wire request enum the handler matches over.
    pub request_enum: &'static str,
    /// Reply enum whose non-error variants count as acks.
    pub reply_enum: &'static str,
}

/// Fence-before-apply conformance spec: every arm of the handler's
/// match over `request_enum` that (transitively) touches the segment
/// store must first reach one of the epoch-fence functions — except the
/// variants listed exempt (creation ops and the mirror/promotion plane,
/// which carry their own epoch checks).
#[derive(Debug, Clone)]
pub struct FenceSpec {
    pub handler_type: &'static str,
    pub handler_method: &'static str,
    pub request_enum: &'static str,
    /// Variants exempt from the fence (with the reason in the policy).
    pub exempt_variants: &'static [&'static str],
}

/// Engine configuration. [`Config::clouds`] is the workspace's own
/// policy; fixtures and tests may build stricter or looser ones.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates scheduled purely in virtual time: wall clocks and sleeps
    /// are banned in their `src/`.
    pub sim_crates: Vec<String>,
    /// Enum → handler conformance checks.
    pub dispatch: Vec<DispatchSpec>,
    /// Root-relative path of the metric-name manifest.
    pub obs_manifest: String,
    /// WAL-before-ack handler specs.
    pub ack_handlers: Vec<AckHandlerSpec>,
    /// Fence-before-apply handler specs.
    pub fences: Vec<FenceSpec>,
    /// Hop bound for phase-2 summary propagation. 4 covers the deepest
    /// real chain (`handle` → `write_back_batch` → `write_back` →
    /// `log.append`) with one hop to spare; anything deeper is far more
    /// likely a name-matching artifact than a real call path.
    pub max_call_depth: usize,
    /// Method names that block (transport calls, channel sends/recvs);
    /// matched in method form only.
    pub blocking_methods: Vec<&'static str>,
    /// Epoch-fence function names.
    pub fence_fns: Vec<&'static str>,
    /// Write-ahead-log method names (on a `log_receivers` receiver).
    pub log_methods: Vec<&'static str>,
    /// Receiver names whose method calls are WAL appends.
    pub log_receivers: Vec<&'static str>,
    /// Receiver names whose method calls are segment-store touches.
    pub store_receivers: Vec<&'static str>,
    /// Store methods that mutate durable state.
    pub store_mutator_methods: Vec<&'static str>,
    /// Free/method names that mutate durable state wherever they appear.
    pub mutator_methods: Vec<&'static str>,
    /// Reply enums and their error variants: constructing any *other*
    /// variant counts as an ack-returning path.
    pub reply_enums: Vec<(&'static str, Vec<&'static str>)>,
}

impl Config {
    /// The policy for this workspace.
    pub fn clouds() -> Config {
        Config {
            sim_crates: vec![
                "simnet".into(),
                "obs".into(),
                "codec".into(),
                "chaos".into(),
                "store".into(),
            ],
            dispatch: vec![
                DispatchSpec {
                    enum_name: "PacketKind",
                    def_suffix: "crates/ratp/src/packet.rs",
                    handler_suffixes: &["crates/ratp/src/node.rs"],
                },
                DispatchSpec {
                    enum_name: "DsmRequest",
                    def_suffix: "crates/dsm/src/proto.rs",
                    handler_suffixes: &["crates/dsm/src/server.rs"],
                },
                DispatchSpec {
                    enum_name: "RecallRequest",
                    def_suffix: "crates/dsm/src/proto.rs",
                    handler_suffixes: &["crates/dsm/src/client.rs"],
                },
                DispatchSpec {
                    enum_name: "CommitRequest",
                    def_suffix: "crates/consistency/src/commit.rs",
                    handler_suffixes: &["crates/consistency/src/commit.rs"],
                },
                DispatchSpec {
                    enum_name: "LogRecord",
                    def_suffix: "crates/store/src/lib.rs",
                    handler_suffixes: &["crates/store/src/lib.rs"],
                },
            ],
            obs_manifest: "OBS_SCHEMA.md".into(),
            ack_handlers: vec![
                AckHandlerSpec {
                    handler_type: "DsmServer",
                    handler_method: "handle",
                    request_enum: "DsmRequest",
                    reply_enum: "DsmReply",
                },
                AckHandlerSpec {
                    handler_type: "CommitParticipant",
                    handler_method: "handle",
                    request_enum: "CommitRequest",
                    reply_enum: "CommitReply",
                },
            ],
            fences: vec![FenceSpec {
                handler_type: "DsmServer",
                handler_method: "handle",
                request_enum: "DsmRequest",
                // Creation ops act before the segment is served;
                // the mirror/promotion plane carries its own epoch
                // checks (`adopt_mirror_config` / `log_replica_config`)
                // instead of the serving fence.
                exempt_variants: &[
                    "CreateSegment",
                    "CreateReplicated",
                    "MirrorCreate",
                    "MirrorWrite",
                    "MirrorDestroy",
                    "PromoteSegment",
                ],
            }],
            max_call_depth: 4,
            blocking_methods: vec![
                "call",
                "call_many",
                "call_with_budget",
                "notify",
                "send_heartbeat",
                "send",
                "recv",
                "recv_timeout",
            ],
            fence_fns: vec!["check_serving"],
            log_methods: vec!["append"],
            log_receivers: vec!["log"],
            store_receivers: vec!["store"],
            store_mutator_methods: vec!["create", "destroy"],
            mutator_methods: vec![
                "write_page",
                "restore_page",
                "commit_page",
                "install_pages",
            ],
            reply_enums: vec![
                ("DsmReply", vec!["Err"]),
                ("CommitReply", vec!["Refused", "Unknown"]),
            ],
        }
    }
}

/// Run every rule over the workspace rooted at `root`.
///
/// Findings suppressed by `lint:allow` are dropped; the rest come back
/// sorted by (file, line, rule) so output is stable run to run.
pub fn run(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let files = load_workspace(root)?;
    let sums = summary::Summaries::build(&files, cfg);
    let mut findings = Vec::new();
    rules::determinism::check(&files, cfg, &mut findings);
    rules::hash_iter::check(&files, &mut findings);
    rules::locks::check(&sums, &mut findings);
    rules::dispatch::check(&files, cfg, &mut findings);
    rules::obs_schema::check(root, &files, cfg, &mut findings);
    rules::wal_ack::check(&files, &sums, cfg, &mut findings);
    rules::fence::check(&files, &sums, cfg, &mut findings);
    rules::lock_across_call::check(&sums, cfg, &mut findings);

    // Apply lint:allow suppression, recording which directive each
    // suppressed finding used so unused directives can be reported.
    let mut used: BTreeSet<(String, u32, String)> = BTreeSet::new();
    let mut kept: Vec<Finding> = Vec::new();
    for f in findings {
        let directive = files
            .iter()
            .find(|sf| sf.info.rel == f.file)
            .and_then(|sf| sf.lexed.allowing_line(f.rule, f.line));
        match directive {
            Some(dl) => {
                used.insert((f.file.clone(), dl, f.rule.to_string()));
            }
            None => kept.push(f),
        }
    }

    // Stale-allow: a directive that suppressed nothing this run is
    // itself a finding — escape hatches must not rot silently. The
    // check exempts `stale-allow` itself and honors its own allow
    // (for the rare directive kept for a flapping heuristic).
    for sf in &files {
        for (line, rls) in &sf.lexed.allows {
            for rule in rls {
                if rule == "stale-allow" {
                    continue;
                }
                if used.contains(&(sf.info.rel.clone(), *line, rule.clone())) {
                    continue;
                }
                if sf.lexed.is_allowed("stale-allow", *line) {
                    continue;
                }
                kept.push(Finding {
                    file: sf.info.rel.clone(),
                    line: *line,
                    rule: "stale-allow",
                    message: format!(
                        "`lint:allow({rule})` suppresses nothing — the finding it \
                         silenced is gone; delete the directive (or it will hide \
                         the next real `{rule}` violation here)"
                    ),
                });
            }
        }
    }
    kept.sort();
    kept.dedup();
    Ok(kept)
}

/// Collect and lex every `.rs` file under `root`, skipping build
/// output, vendored shims, and lint fixtures.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut out = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&p)?;
        let lexed = lexer::lex(&src);
        let runtime_tokens = strip_test_items(&lexed.tokens);
        out.push(SourceFile {
            info: classify(&rel),
            lexed,
            runtime_tokens,
        });
    }
    Ok(out)
}

const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", "node_modules"];

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn classify(rel: &str) -> FileInfo {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.len() >= 3 && parts[0] == "crates" {
        Some(parts[1].to_string())
    } else {
        None
    };
    let is_src = match crate_name {
        Some(_) => parts.get(2) == Some(&"src"),
        None => parts.first() == Some(&"src"),
    };
    FileInfo {
        rel: rel.to_string(),
        crate_name,
        is_src,
    }
}

/// Drop items gated behind `#[cfg(test)]` or `#[test]` (and any
/// attribute mentioning `test`, e.g. `#[cfg(all(test, …))]`), so
/// runtime-behavior rules don't fire on test scaffolding.
pub fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind.is_punct('#') && matches!(tokens.get(i + 1), Some(t) if t.kind.is_punct('['))
        {
            let (attr_end, mentions_test) = scan_attr(tokens, i + 1);
            if mentions_test {
                i = skip_item(tokens, attr_end);
                continue;
            }
            // Keep the attribute tokens; rules don't care but positions
            // inside other items must survive intact.
            out.extend_from_slice(&tokens[i..attr_end]);
            i = attr_end;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Scan a `[...]` attribute starting at the `[`; returns
/// (index-after-`]`, attribute-mentions-`test`).
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut mentions = false;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].kind {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, mentions);
                }
            }
            Tok::Ident(id) if id == "test" => mentions = true,
            _ => {}
        }
        i += 1;
    }
    (tokens.len(), mentions)
}

/// Skip one item starting at `i` (past its attributes): consume any
/// further attributes, then tokens until a top-level `;` or a balanced
/// `{…}` block.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i < tokens.len()
        && tokens[i].kind.is_punct('#')
        && matches!(tokens.get(i + 1), Some(t) if t.kind.is_punct('['))
    {
        let (end, _) = scan_attr(tokens, i + 1);
        i = end;
    }
    let mut paren = 0i32;
    while i < tokens.len() {
        match tokens[i].kind {
            Tok::Punct('(') | Tok::Punct('[') => paren += 1,
            Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
            Tok::Punct(';') if paren == 0 => return i + 1,
            Tok::Punct('{') if paren == 0 => {
                let mut depth = 0i32;
                while i < tokens.len() {
                    match tokens[i].kind {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Output formatting
// ---------------------------------------------------------------------------

/// Render findings as an aligned human-readable table.
pub fn render_table(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "clouds-lint: no findings\n".to_string();
    }
    let loc: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{}", f.file, f.line))
        .collect();
    let w_rule = findings.iter().map(|f| f.rule.len()).max().unwrap_or(0);
    let w_loc = loc.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (f, l) in findings.iter().zip(&loc) {
        let _ = writeln!(out, "{:<w_rule$}  {:<w_loc$}  {}", f.rule, l, f.message);
    }
    let _ = writeln!(out, "\nclouds-lint: {} finding(s)", findings.len());
    out
}

/// Render findings as stable machine-readable JSON (sorted input ⇒
/// byte-stable output).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message)
        );
    }
    out.push_str("]}\n");
    out
}

/// Every rule the engine can emit, with a one-line description — the
/// SARIF `rules` array and the README table are generated from the same
/// facts.
pub const RULES: &[(&str, &str)] = &[
    ("wall-clock", "no wall-clock time in virtual-time crates"),
    ("os-entropy", "no OS entropy in virtual-time crates"),
    ("std-sync-lock", "std::sync locks banned; use parking_lot"),
    ("hash-iter", "no HashMap/HashSet iteration into canonical output"),
    ("lock-order", "global lock acquisition order must be acyclic"),
    (
        "lock-across-call",
        "no lock guard held across a blocking transport/channel call",
    ),
    ("dispatch-arm", "every wire enum variant must have a handler arm"),
    ("obs-schema", "metric names must match the checked-in manifest"),
    (
        "wal-before-ack",
        "acked durable mutations must reach log.append",
    ),
    (
        "fence-before-apply",
        "wire-dispatched segment ops must pass the epoch fence before touching the store",
    ),
    ("stale-allow", "lint:allow directives that suppress nothing"),
];

/// Render findings as SARIF 2.1.0 so CI can surface them as
/// code-scanning annotations. Stable for sorted input, hand-rolled like
/// the JSON renderer (this crate stays dependency-free).
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"clouds-lint\",\"informationUri\":\
         \"https://example.invalid/clouds-lint\",\"rules\":[",
    );
    for (i, (id, desc)) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
            json_str(id),
            json_str(desc)
        );
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.file),
            f.line
        );
    }
    out.push_str("]}]}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Path-chain helpers shared by rules.
pub(crate) fn path_chain_at(tokens: &[Token], i: usize) -> Option<(Vec<String>, usize)> {
    let first = tokens[i].kind.ident()?;
    let mut segs = vec![first.to_string()];
    let mut j = i + 1;
    while j + 1 < tokens.len()
        && matches!(tokens[j].kind, Tok::PathSep)
        && tokens[j + 1].kind.ident().is_some()
    {
        segs.push(tokens[j + 1].kind.ident().unwrap().to_string());
        j += 2;
    }
    Some((segs, j))
}

/// Collect the same-line `BTreeSet` of used rule names — convenience
/// for tests.
pub fn rule_names(findings: &[Finding]) -> BTreeSet<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------------------
// Function segmentation (shared by the lock-order and hash-iter rules)
// ---------------------------------------------------------------------------

/// One `fn` item located in a token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when inside an `impl` block.
    pub impl_type: Option<String>,
    /// Token range of the parameter list, `(`‥`)` exclusive of parens.
    pub params: (usize, usize),
    /// Token range of the body, `{`‥`}` exclusive of braces.
    pub body: (usize, usize),
}

/// Locate every `fn` with a body, tracking the enclosing `impl` type
/// (for `impl T` the type `T`; for `impl Tr for T` also `T`).
pub fn functions(tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    // Stack of (brace_depth_at_open, Option<impl type>).
    let mut impl_stack: Vec<(i32, Option<String>)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                while impl_stack.last().is_some_and(|(d, _)| *d > depth) {
                    impl_stack.pop();
                }
            }
            Tok::Ident(id) if id == "impl" => {
                // Scan to the opening `{`, extracting the subject type:
                // the last path ident before `{` that is not a generic
                // parameter (after `for`, if present).
                let mut j = i + 1;
                let mut last_ident: Option<String> = None;
                let mut angle = 0i32;
                while j < tokens.len() {
                    match &tokens[j].kind {
                        Tok::Punct('{') | Tok::Punct(';') => break,
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Ident(id2) if angle == 0 && id2 != "for" && id2 != "where" => {
                            last_ident = Some(id2.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < tokens.len() && tokens[j].kind.is_punct('{') {
                    impl_stack.push((depth + 1, last_ident));
                    depth += 1;
                    i = j + 1;
                    continue;
                }
                i = j;
                continue;
            }
            Tok::Ident(id) if id == "fn" => {
                let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) else {
                    i += 1;
                    continue;
                };
                let name = name.clone();
                // Find parameter parens (skip generics).
                let mut j = i + 2;
                let mut angle = 0i32;
                while j < tokens.len() {
                    match tokens[j].kind {
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Punct('(') if angle <= 0 => break,
                        Tok::Punct('{') | Tok::Punct(';') => break,
                        _ => {}
                    }
                    j += 1;
                }
                if !tokens.get(j).is_some_and(|t| t.kind.is_punct('(')) {
                    i = j;
                    continue;
                }
                let params_start = j + 1;
                let mut paren = 1i32;
                j += 1;
                while j < tokens.len() && paren > 0 {
                    match tokens[j].kind {
                        Tok::Punct('(') => paren += 1,
                        Tok::Punct(')') => paren -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let params_end = j.saturating_sub(1);
                // Find the body `{` at paren/bracket depth 0 (skips the
                // return type and where clause); a `;` first means no body.
                let mut k = j;
                let mut grp = 0i32;
                while k < tokens.len() {
                    match tokens[k].kind {
                        Tok::Punct('(') | Tok::Punct('[') => grp += 1,
                        Tok::Punct(')') | Tok::Punct(']') => grp -= 1,
                        Tok::Punct(';') if grp == 0 => break,
                        Tok::Punct('{') if grp == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if !tokens.get(k).is_some_and(|t| t.kind.is_punct('{')) {
                    i = k;
                    continue;
                }
                let body_start = k + 1;
                let mut brace = 1i32;
                let mut m = body_start;
                while m < tokens.len() && brace > 0 {
                    match tokens[m].kind {
                        Tok::Punct('{') => brace += 1,
                        Tok::Punct('}') => brace -= 1,
                        _ => {}
                    }
                    m += 1;
                }
                let body_end = m.saturating_sub(1);
                out.push(FnSpan {
                    name,
                    impl_type: impl_stack.last().and_then(|(_, t)| t.clone()),
                    params: (params_start, params_end),
                    body: (body_start, body_end),
                });
                // Continue scanning *inside* the body too (nested fns are
                // rare; treating them as part of the outer body is fine),
                // but impl tracking needs the braces: resume right after
                // the opening brace.
                depth += 1;
                i = body_start;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    out
}
