//! Hand-rolled Rust lexer — just enough fidelity for token-pattern
//! linting.
//!
//! The rules in this crate match on *token* shapes (`std :: thread ::
//! sleep`, `recv . drain ( )`), so the lexer's one job is to never
//! mistake prose for code: string literals (including raw strings with
//! any number of `#`s and byte strings), char literals vs lifetimes,
//! and nested block comments must all be consumed exactly. Everything
//! else — numeric suffixes, float forms, exact keyword sets — can stay
//! coarse.
//!
//! Comments are not emitted as tokens, but `// lint:allow(rule)`
//! directives inside them are collected per line so the engine can
//! suppress findings (see [`LexedFile::allows`]).

use std::collections::{BTreeMap, BTreeSet};

/// One lexical token with the 1-based line it started on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// Token kinds. Punctuation is emitted one char at a time except `::`,
/// which rules need as a single path separator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`self`, `fn`, `HashMap`, …).
    Ident(String),
    /// Lifetime such as `'a` or `'static` (without the quote).
    Lifetime(String),
    /// String literal content (escapes left undecoded except `\"`);
    /// covers `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str(String),
    /// Char or byte literal (`'x'`, `b'\n'`); content not preserved.
    Char,
    /// Numeric literal; value not preserved.
    Num,
    /// `::`
    PathSep,
    /// Any other single punctuation character.
    Punct(char),
}

impl Tok {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident(i) if i == s)
    }

    /// True if this token is the punctuation char `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// Result of lexing one source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    /// Line → rule names allowed by `// lint:allow(rule)` directives.
    /// A directive suppresses findings on its own line; if its line has
    /// no code tokens it also covers the next line (comment-above
    /// style).
    pub allows: BTreeMap<u32, BTreeSet<String>>,
    /// Lines that carry at least one code token.
    pub code_lines: BTreeSet<u32>,
}

impl LexedFile {
    /// True when `rule` is suppressed at `line` by an allow directive
    /// on the line itself or on a directive-only line above it.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allowing_line(rule, line).is_some()
    }

    /// The line of the `lint:allow` directive suppressing `rule` at
    /// `line`, if any — the line itself, or a directive-only line
    /// reached by walking upward over consecutive comment-only lines.
    /// Identifying the directive (not just the suppression) lets the
    /// engine track which directives are actually used and report the
    /// rest as stale.
    pub fn allowing_line(&self, rule: &str, line: u32) -> Option<u32> {
        if let Some(rules) = self.allows.get(&line) {
            if rules.contains(rule) {
                return Some(line);
            }
        }
        // Walk upward over consecutive comment-only lines.
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.code_lines.contains(&l) {
                return None;
            }
            if let Some(rules) = self.allows.get(&l) {
                if rules.contains(rule) {
                    return Some(l);
                }
            }
        }
        None
    }
}

/// Lex `src` into tokens plus allow-directive metadata.
pub fn lex(src: &str) -> LexedFile {
    let mut out = LexedFile::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr, $ln:expr) => {
            out.code_lines.insert($ln);
            out.tokens.push(Token { kind: $kind, line: $ln });
        };
    }

    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment: scan to newline, harvesting directives.
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                collect_allows(&src[start..i], line, &mut out.allows);
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment, nested. Directives inside are honored
                // line by line.
                let mut depth = 1;
                let start_line = line;
                let comment_start = i;
                i += 2;
                let mut seg_start = comment_start;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            collect_allows(&src[seg_start..i], line, &mut out.allows);
                            seg_start = i + 1;
                            line += 1;
                        }
                        i += 1;
                    }
                }
                collect_allows(&src[seg_start..i.min(b.len())], line, &mut out.allows);
                let _ = start_line;
            }
            '"' => {
                let (s, ni, nl) = scan_string(src, i, line);
                push!(Tok::Str(s), line);
                i = ni;
                line = nl;
            }
            'r' | 'b' if starts_special_literal(b, i) => {
                let first = b[i];
                // b'x' byte char
                if first == b'b' && b[i + 1] == b'\'' {
                    push!(Tok::Char, line);
                    i = skip_char_literal(b, i + 1);
                    continue;
                }
                // b"…" byte string: escapes apply, so scan like "…".
                if first == b'b' && b[i + 1] == b'"' {
                    let (s, ni, nl) = scan_string(src, i + 1, line);
                    push!(Tok::Str(s), line);
                    i = ni;
                    line = nl;
                    continue;
                }
                // b"..", r"..", r#".."#, br#".."#, rb.. is not valid Rust
                let mut j = i + 1;
                if (first == b'b' && j < b.len() && b[j] == b'r')
                    || (first == b'r' && j < b.len() && b[j] == b'b')
                {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    // Raw (or byte) string: scan to `"` followed by
                    // `hashes` hash marks, no escapes.
                    let content_start = j + 1;
                    let mut k = content_start;
                    let mut nl = line;
                    loop {
                        if k >= b.len() {
                            break;
                        }
                        if b[k] == b'\n' {
                            nl += 1;
                            k += 1;
                            continue;
                        }
                        if b[k] == b'"' {
                            let mut h = 0;
                            while h < hashes && k + 1 + h < b.len() && b[k + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                break;
                            }
                        }
                        k += 1;
                    }
                    push!(Tok::Str(src[content_start..k.min(b.len())].to_string()), line);
                    i = (k + 1 + hashes).min(b.len());
                    line = nl;
                } else {
                    // Plain identifier starting with r/b.
                    let (id, ni) = scan_ident(src, i);
                    push!(Tok::Ident(id), line);
                    i = ni;
                }
            }
            '\'' => {
                // Lifetime vs char literal. `'` + ident-start: lifetime
                // unless the char after the single ident char is `'`
                // (i.e. 'a'). Escapes ('\n', '\u{..}') are always chars.
                let next = b.get(i + 1).copied();
                match next {
                    Some(n)
                        if (n as char).is_alphabetic() || n == b'_' =>
                    {
                        let (id, ni) = scan_ident(src, i + 1);
                        if b.get(ni).copied() == Some(b'\'') && id.chars().count() == 1 {
                            push!(Tok::Char, line);
                            i = ni + 1;
                        } else {
                            push!(Tok::Lifetime(id), line);
                            i = ni;
                        }
                    }
                    _ => {
                        push!(Tok::Char, line);
                        i = skip_char_literal(b, i);
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let (id, ni) = scan_ident(src, i);
                push!(Tok::Ident(id), line);
                i = ni;
            }
            c if c.is_ascii_digit() => {
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // Stop a `0..10` range from being eaten as one number.
                    if b[i] == b'.' && b.get(i + 1).copied() == Some(b'.') {
                        break;
                    }
                    i += 1;
                }
                push!(Tok::Num, line);
            }
            ':' if i + 1 < b.len() && b[i + 1] == b':' => {
                push!(Tok::PathSep, line);
                i += 2;
            }
            _ => {
                push!(Tok::Punct(c), line);
                i += 1;
            }
        }
    }
    out
}

fn starts_special_literal(b: &[u8], i: usize) -> bool {
    // r" r# b" b' br" br# (and rb, not valid but harmless)
    let Some(&n) = b.get(i + 1) else { return false };
    match b[i] {
        b'r' => n == b'"' || n == b'#' || (n == b'b' && matches!(b.get(i + 2), Some(b'"' | b'#'))),
        b'b' => n == b'"' || n == b'\'' || (n == b'r' && matches!(b.get(i + 2), Some(b'"' | b'#'))),
        _ => false,
    }
}

fn scan_ident(src: &str, start: usize) -> (String, usize) {
    let mut end = start;
    for (off, ch) in src[start..].char_indices() {
        if ch.is_alphanumeric() || ch == '_' {
            end = start + off + ch.len_utf8();
        } else {
            break;
        }
    }
    (src[start..end].to_string(), end)
}

/// Scan a `"…"` literal from the opening quote; returns (content,
/// index-after-closing-quote, updated-line).
fn scan_string(src: &str, start: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut i = start + 1;
    let content_start = i;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'"' => {
                return (src[content_start..i].to_string(), i + 1, line);
            }
            _ => i += 1,
        }
    }
    (src[content_start..].to_string(), b.len(), line)
}

/// Skip a char literal from its opening quote; tolerant of escapes.
fn skip_char_literal(b: &[u8], start: usize) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            b'\n' => return i, // malformed; bail at line end
            _ => i += 1,
        }
    }
    i
}

/// Harvest `lint:allow(rule1, rule2)` directives from one comment line.
///
/// A directive must *lead* the comment (first content after the
/// `//`/`/*`/`!`/`*` markers): prose that merely mentions
/// `lint:allow(...)` mid-sentence — the lint crate's own docs do this
/// constantly — is not a directive and must not register (it would
/// then be reported as stale).
fn collect_allows(comment: &str, line: u32, allows: &mut BTreeMap<u32, BTreeSet<String>>) {
    let lead = comment.trim_start_matches(['/', '*', '!', ' ', '\t']);
    if !lead.starts_with("lint:allow(") {
        return;
    }
    let mut rest = lead;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        if let Some(close) = rest.find(')') {
            for rule in rest[..close].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    allows.entry(line).or_default().insert(rule.to_string());
                }
            }
            rest = &rest[close + 1..];
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(|s| s.to_string()))
            .collect()
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, Tok::Lifetime(_)))
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, Tok::Char))
            .collect();
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn static_lifetime_and_escaped_char() {
        let lexed = lex(r"const S: &'static str = X; let c = '\n'; let u = '\u{1F600}';");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, Tok::Lifetime(l) if l == "static")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| matches!(t.kind, Tok::Char))
                .count(),
            2
        );
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "a /* one /* two */ still comment */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r###"let s = r#"quote " inside"#; let t = r"plain"; x"###);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![r#"quote " inside"#, "plain"]);
        // The trailing `x` must survive (raw string terminated correctly).
        assert!(lexed.tokens.iter().any(|t| t.kind.is_ident("x")));
    }

    #[test]
    fn raw_string_containing_comment_and_fake_quote() {
        let src = r####"let s = r##"has "# and // not a comment"##; y"####;
        let lexed = lex(src);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![r##"has "# and // not a comment"##]);
        assert!(lexed.tokens.iter().any(|t| t.kind.is_ident("y")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let lexed = lex(r#"let a = b"bytes"; let c = b'x'; z"#);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, Tok::Str(s) if s == "bytes")));
        assert!(lexed.tokens.iter().any(|t| matches!(t.kind, Tok::Char)));
        assert!(lexed.tokens.iter().any(|t| t.kind.is_ident("z")));
    }

    #[test]
    fn string_escapes_do_not_terminate_early() {
        let lexed = lex(r#"let s = "a \" b"; tail"#);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.kind, Tok::Str(s) if s == r#"a \" b"#)));
        assert!(lexed.tokens.iter().any(|t| t.kind.is_ident("tail")));
    }

    #[test]
    fn line_numbers_track_newlines_in_all_literal_forms() {
        let src = "a\n\"two\nline\"\n/* c\nc */\nr\"raw\nraw\"\nlast";
        let lexed = lex(src);
        let last = lexed
            .tokens
            .iter()
            .find(|t| t.kind.is_ident("last"))
            .unwrap();
        assert_eq!(last.line, 8);
    }

    #[test]
    fn allow_directives_same_line_and_line_above() {
        let src = "// lint:allow(rule-a): reason\nlet x = 1;\nlet y = 2; // lint:allow(rule-b, rule-c)\n";
        let lexed = lex(src);
        assert!(lexed.is_allowed("rule-a", 2));
        assert!(!lexed.is_allowed("rule-a", 3));
        assert!(lexed.is_allowed("rule-b", 3));
        assert!(lexed.is_allowed("rule-c", 3));
        assert!(!lexed.is_allowed("rule-b", 2));
    }

    #[test]
    fn allow_skips_over_comment_block_lines() {
        let src = "// lint:allow(r1)\n// more prose\nlet x = 1;\n";
        let lexed = lex(src);
        assert!(lexed.is_allowed("r1", 3));
    }

    #[test]
    fn path_sep_is_one_token() {
        let lexed = lex("std::thread::sleep(d)");
        let seps = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, Tok::PathSep))
            .count();
        assert_eq!(seps, 2);
    }

    #[test]
    fn shift_and_turbofish_do_not_confuse() {
        // `>>` and `::<` around generics must not eat neighbors.
        assert_eq!(
            idents("let m: Arc<Mutex<HashMap<u64, Vec<u8>>>> = x.collect::<Vec<_>>();"),
            vec!["let", "m", "Arc", "Mutex", "HashMap", "u64", "Vec", "u8", "x", "collect", "Vec", "_"]
        );
    }
}
