//! `lock-order` — static AB/BA deadlock detection.
//!
//! Per function, every `.lock()` / `.read()` / `.write()` (empty-arg,
//! the `parking_lot` vocabulary) is recorded together with how long its
//! guard plausibly lives: `let`-bound guards to the end of the
//! enclosing block, `match`/`if`/`while` scrutinee guards to the end of
//! the construct, bare temporaries to the end of the statement, and
//! `drop(g)` releases a named guard early. Acquiring `b` while `a` is
//! held contributes the edge `a → b`; calls made while holding `a` pull
//! in the (fixpoint, name-matched) transitive lock summary of every
//! same-named function in the workspace. A cycle in the resulting
//! global graph is a schedule in which two IsiBas can block each other
//! forever, and is reported with a witness path.
//!
//! Keys are `Type.field` when the receiver is a `self` path inside an
//! `impl` block, else the receiver's last identifier; indexed (stripe)
//! receivers like `self.shards[i].pages` keep the whole path with the
//! index abstracted (`Type.shards[_].pages`). The analysis is
//! deliberately approximate (see ARCHITECTURE.md): consistent naming
//! merges distinct locks conservatively, and `lint:allow(lock-order)`
//! on a witness line documents a cycle that cannot be scheduled.
//!
//! Since the v2 inter-procedural pass, the per-function extraction
//! (guard lifetimes, call sites, nesting edges) lives in
//! [`crate::summary`] and is shared with the wal-before-ack,
//! fence-before-apply, and lock-across-call rules; this module keeps
//! only the lock-graph construction and cycle detection.

use crate::summary::Summaries;
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: String,
}

pub fn check(sums: &Summaries, findings: &mut Vec<Finding>) {
    // ---- transitive lock summaries over the name-matched call graph ---
    // (The lock-order graph deliberately keeps the original free
    // name-matching — no impl-type narrowing — so merged same-named
    // locks stay conservative.)
    let mut lockset: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in &sums.fns {
        let s = lockset.entry(f.name.as_str()).or_default();
        for l in &f.locks {
            s.insert(l.key.as_str());
        }
    }
    loop {
        let mut changed = false;
        for f in &sums.fns {
            let mut add: BTreeSet<&str> = BTreeSet::new();
            for c in &f.calls {
                if c.stoplisted {
                    continue;
                }
                if let Some(s) = lockset.get(c.callee.as_str()) {
                    add.extend(s.iter().copied());
                }
            }
            let s = lockset.entry(f.name.as_str()).or_default();
            let before = s.len();
            s.extend(add);
            if s.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- assemble the global edge set ---------------------------------
    let mut edges: Vec<Edge> = Vec::new();
    for f in &sums.fns {
        for e in &f.nest_edges {
            edges.push(Edge {
                from: e.from.clone(),
                to: e.to.clone(),
                file: f.file.clone(),
                line: e.line,
                via: format!("in {}()", f.name),
            });
        }
        for c in &f.calls {
            if c.stoplisted {
                continue;
            }
            let Some(acq) = lockset.get(c.callee.as_str()) else {
                continue;
            };
            for h in &c.held {
                for &k in acq {
                    if h == k {
                        // Cross-function self-edges are dominated by the
                        // name-matching approximation; skip them.
                        continue;
                    }
                    edges.push(Edge {
                        from: h.clone(),
                        to: k.to_string(),
                        file: f.file.clone(),
                        line: c.line,
                        via: format!(
                            "{h} held in {}() across call to {}() which may acquire {k}",
                            f.name, c.callee
                        ),
                    });
                }
            }
        }
    }

    // ---- direct self-edges (reacquire while held, same function) ------
    for e in &edges {
        if e.from == e.to && !e.via.contains("across call") {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: "lock-order",
                message: format!(
                    "`{}` acquired while already held in the same function — \
                     self-deadlock with a non-reentrant lock",
                    e.from
                ),
            });
        }
    }

    // ---- cycle detection (Tarjan SCC over distinct keys) --------------
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in &edges {
        if e.from != e.to {
            adj.entry(e.from.as_str()).or_default().push(e);
        }
    }
    let sccs = tarjan(&adj);
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        if let Some(cycle) = witness_cycle(&adj, &scc) {
            let desc: Vec<String> = cycle
                .iter()
                .map(|e| format!("{} → {} [{}:{} {}]", e.from, e.to, e.file, e.line, e.via))
                .collect();
            let first = cycle[0];
            findings.push(Finding {
                file: first.file.clone(),
                line: first.line,
                rule: "lock-order",
                message: format!("lock-order cycle: {}", desc.join("; ")),
            });
        }
    }
}

/// Tarjan strongly-connected components over the lock graph.
fn tarjan<'a>(adj: &BTreeMap<&'a str, Vec<&'a Edge>>) -> Vec<Vec<&'a str>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (n, es) in adj {
        nodes.insert(n);
        for e in es {
            nodes.insert(e.to.as_str());
        }
    }
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let idx_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let node_list: Vec<&str> = nodes.iter().copied().collect();
    let mut state = vec![NodeState::default(); node_list.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<&str>> = Vec::new();

    // Iterative Tarjan (explicit work stack: (node, child-cursor)).
    for start in 0..node_list.len() {
        if state[start].index.is_some() {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, cursor)) = work.last() {
            if cursor == 0 && state[v].index.is_none() {
                state[v].index = Some(next_index);
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            let succs: Vec<usize> = adj
                .get(node_list[v])
                .map(|es| es.iter().map(|e| idx_of[e.to.as_str()]).collect())
                .unwrap_or_default();
            if cursor < succs.len() {
                work.last_mut().expect("non-empty").1 += 1;
                let w = succs[cursor];
                if state[w].index.is_none() {
                    work.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.unwrap());
                }
            } else {
                work.pop();
                if let Some(&(p, _)) = work.last() {
                    let vl = state[v].lowlink;
                    state[p].lowlink = state[p].lowlink.min(vl);
                }
                if state[v].lowlink == state[v].index.unwrap() {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        state[w].on_stack = false;
                        comp.push(node_list[w]);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Reconstruct one concrete cycle inside an SCC for the report.
fn witness_cycle<'a>(
    adj: &'a BTreeMap<&'a str, Vec<&'a Edge>>,
    scc: &[&'a str],
) -> Option<Vec<&'a Edge>> {
    let inside: BTreeSet<&str> = scc.iter().copied().collect();
    let start = *scc.iter().min()?;
    // BFS from `start` back to `start` staying inside the SCC.
    let mut prev: BTreeMap<&str, &Edge> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for &e in adj.get(n).into_iter().flatten() {
            let to = e.to.as_str();
            if !inside.contains(to) {
                continue;
            }
            if to == start {
                // Unwind.
                let mut path = vec![e];
                let mut cur = n;
                while cur != start {
                    let pe = *prev.get(cur)?;
                    path.push(pe);
                    cur = pe.from.as_str();
                }
                path.reverse();
                return Some(path);
            }
            if !prev.contains_key(to) {
                prev.insert(to, e);
                queue.push_back(to);
            }
        }
    }
    None
}
