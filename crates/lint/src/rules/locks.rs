//! `lock-order` — static AB/BA deadlock detection.
//!
//! Per function, every `.lock()` / `.read()` / `.write()` (empty-arg,
//! the `parking_lot` vocabulary) is recorded together with how long its
//! guard plausibly lives: `let`-bound guards to the end of the
//! enclosing block, `match`/`if`/`while` scrutinee guards to the end of
//! the construct, bare temporaries to the end of the statement, and
//! `drop(g)` releases a named guard early. Acquiring `b` while `a` is
//! held contributes the edge `a → b`; calls made while holding `a` pull
//! in the (fixpoint, name-matched) transitive lock summary of every
//! same-named function in the workspace. A cycle in the resulting
//! global graph is a schedule in which two IsiBas can block each other
//! forever, and is reported with a witness path.
//!
//! Keys are `Type.field` when the receiver is a `self` path inside an
//! `impl` block, else the receiver's last identifier; indexed (stripe)
//! receivers like `self.shards[i].pages` keep the whole path with the
//! index abstracted (`Type.shards[_].pages`). The analysis is
//! deliberately approximate (see ARCHITECTURE.md): consistent naming
//! merges distinct locks conservatively, and `lint:allow(lock-order)`
//! on a witness line documents a cycle that cannot be scheduled.

use crate::lexer::{Tok, Token};
use crate::{functions, Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "move", "in", "as", "ref", "mut", "where", "impl", "dyn", "unsafe", "async", "await", "Some",
    "None", "Ok", "Err", "Box", "Vec", "String", "Arc", "Rc",
];

/// Method names so ubiquitous (std trait impls, accessors) that
/// name-matching them to workspace functions is pure noise: a call to
/// `x.len()` must not pull in the lock summary of every `fn len` in
/// the tree. Such leaf accessors still contribute their own direct
/// facts when analyzed as definitions.
const CALL_STOPLIST: &[&str] = &[
    "len",
    "is_empty",
    "fmt",
    "clone",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "default",
    "to_string",
    "as_ref",
    "as_mut",
    "as_str",
    "deref",
    "deref_mut",
    "index",
    "from",
    "into",
    "drop",
    "new",
    "finish",
    // Collection/accessor vocabulary: `.get(`/`.insert(`/… on a plain
    // HashMap would otherwise name-match same-named workspace methods
    // (SegmentStore::get, Counter::inc, …) and fabricate edges.
    "get",
    "get_mut",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "clear",
    "entry",
    "inc",
    "observe",
    // Atomics vocabulary: `now_ns.load(…)` must not match `ObjectMeta::load`.
    "load",
    "store",
    // Channel vocabulary: `tx.send(…)`/`rx.recv()` must not match
    // `Endpoint::send` and friends.
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
];

#[derive(Debug, Clone, Copy, PartialEq)]
enum GuardKind {
    /// Released at the next `;` at acquisition depth.
    Stmt,
    /// Released when brace depth drops below `depth`.
    Block,
}

#[derive(Debug, Clone)]
struct Guard {
    key: String,
    kind: GuardKind,
    depth: i32,
    /// `let` binding name, for `drop(name)` release.
    bound: Option<String>,
}

#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    via: String,
}

#[derive(Debug, Default)]
struct FnFacts {
    /// File the function lives in.
    file: String,
    /// Lock keys acquired directly in this function.
    direct: BTreeSet<String>,
    /// (callee simple name, held keys at the call, line).
    calls: Vec<(String, Vec<String>, u32)>,
    /// Intra-function held→acquired edges.
    edges: Vec<Edge>,
}

pub fn check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    // ---- per-function extraction --------------------------------------
    let mut facts: Vec<(String, FnFacts)> = Vec::new(); // (fn simple name, facts)
    for sf in files {
        if !sf.info.is_src {
            continue;
        }
        let toks = &sf.runtime_tokens;
        for f in functions(toks) {
            let ff = extract(toks, &f, &sf.info.rel);
            facts.push((f.name.clone(), ff));
        }
    }

    // ---- transitive lock summaries over the name-matched call graph ---
    let mut summary: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (name, ff) in &facts {
        summary.entry(name.clone()).or_default().extend(ff.direct.iter().cloned());
    }
    loop {
        let mut changed = false;
        for (name, ff) in &facts {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for (callee, _, _) in &ff.calls {
                if let Some(s) = summary.get(callee) {
                    add.extend(s.iter().cloned());
                }
            }
            let s = summary.entry(name.clone()).or_default();
            let before = s.len();
            s.extend(add);
            if s.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- assemble the global edge set ---------------------------------
    let mut edges: Vec<Edge> = Vec::new();
    for (name, ff) in &facts {
        edges.extend(ff.edges.iter().cloned());
        for (callee, held, line) in &ff.calls {
            let Some(acq) = summary.get(callee) else { continue };
            for h in held {
                for k in acq {
                    if h == k {
                        // Cross-function self-edges are dominated by the
                        // name-matching approximation; skip them.
                        continue;
                    }
                    edges.push(Edge {
                        from: h.clone(),
                        to: k.clone(),
                        file: ff.file.clone(),
                        line: *line,
                        via: format!("{h} held in {name}() across call to {callee}() which may acquire {k}"),
                    });
                }
            }
        }
    }

    // ---- direct self-edges (reacquire while held, same function) ------
    for e in &edges {
        if e.from == e.to && !e.via.contains("across call") {
            findings.push(Finding {
                file: e.file.clone(),
                line: e.line,
                rule: "lock-order",
                message: format!(
                    "`{}` acquired while already held in the same function — \
                     self-deadlock with a non-reentrant lock",
                    e.from
                ),
            });
        }
    }

    // ---- cycle detection (Tarjan SCC over distinct keys) --------------
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in &edges {
        if e.from != e.to {
            adj.entry(e.from.as_str()).or_default().push(e);
        }
    }
    let sccs = tarjan(&adj);
    for scc in sccs {
        if scc.len() < 2 {
            continue;
        }
        if let Some(cycle) = witness_cycle(&adj, &scc) {
            let desc: Vec<String> = cycle
                .iter()
                .map(|e| format!("{} → {} [{}:{} {}]", e.from, e.to, e.file, e.line, e.via))
                .collect();
            let first = cycle[0];
            findings.push(Finding {
                file: first.file.clone(),
                line: first.line,
                rule: "lock-order",
                message: format!("lock-order cycle: {}", desc.join("; ")),
            });
        }
    }
}

/// Extract lock facts from one function body.
fn extract(toks: &[Token], f: &crate::FnSpan, file: &str) -> FnFacts {
    let mut ff = FnFacts {
        file: file.to_string(),
        ..FnFacts::default()
    };
    let (bs, be) = f.body;
    let end = be.min(toks.len());
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32; // brace depth relative to body start

    let mut i = bs;
    while i < end {
        match &toks[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            // `;` ends a statement; `,` ends a match arm (and, as a
            // conservative side effect, an argument position — losing a
            // same-statement edge, never inventing one).
            Tok::Punct(';') | Tok::Punct(',') => {
                guards.retain(|g| !(g.kind == GuardKind::Stmt && g.depth >= depth));
            }
            // `drop(name)` releases a let-bound guard early.
            Tok::Ident(id) if id == "drop" && toks.get(i + 1).is_some_and(|t| t.kind.is_punct('(')) => {
                if let Some(Tok::Ident(arg)) = toks.get(i + 2).map(|t| &t.kind) {
                    if toks.get(i + 3).is_some_and(|t| t.kind.is_punct(')')) {
                        guards.retain(|g| g.bound.as_deref() != Some(arg.as_str()));
                    }
                }
            }
            // Acquisition: `<chain> . lock|read|write ( )`
            Tok::Punct('.')
                if matches!(
                    toks.get(i + 1).and_then(|t| t.kind.ident()),
                    Some("lock" | "read" | "write")
                ) && toks.get(i + 2).is_some_and(|t| t.kind.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.kind.is_punct(')')) =>
            {
                let line = toks[i + 1].line;
                if let Some((key, chain_start)) = receiver_key(toks, i, f) {
                    for g in &guards {
                        ff.edges.push(Edge {
                            from: g.key.clone(),
                            to: key.clone(),
                            file: file.to_string(),
                            line,
                            via: format!("in {}()", f.name),
                        });
                    }
                    ff.direct.insert(key.clone());
                    // `m.lock().remove(x)` — the chain continuing past
                    // the guard call means the guard is a temporary:
                    // a `let` binds the chain's *result*, not the guard.
                    let chained = toks.get(i + 4).is_some_and(|t| t.kind.is_punct('.'));
                    let (kind, gdepth, bound) =
                        binding_of(toks, chain_start, bs, depth, chained);
                    guards.push(Guard {
                        key,
                        kind,
                        depth: gdepth,
                        bound,
                    });
                }
                i += 4;
                continue;
            }
            // Call site: `name (` — not a method-definition, macro, or
            // constructor.
            Tok::Ident(id)
                if toks.get(i + 1).is_some_and(|t| t.kind.is_punct('('))
                    && !KEYWORDS.contains(&id.as_str())
                    && !CALL_STOPLIST.contains(&id.as_str())
                    && id.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                    && !(i > 0 && toks[i - 1].kind.is_ident("fn")) =>
            {
                let held: Vec<String> = guards.iter().map(|g| g.key.clone()).collect();
                ff.calls.push((id.clone(), held, toks[i].line));
            }
            _ => {}
        }
        i += 1;
    }
    ff
}

/// Key the receiver chain ending at the `.` before lock/read/write.
/// Returns (key, index of the chain's first token).
///
/// Indexed receivers — the stripe pattern `self.shards[i].pages.lock()`
/// — are traversed through the `[...]` (any balanced index expression)
/// and keyed with the whole path, index abstracted to `[_]`:
/// `DsmServer.shards[_].pages`. Every element of a stripe array maps to
/// the one key, which is exactly the right approximation for the
/// stripe discipline (never hold two stripes of one family; sweeps
/// visit stripes one at a time), because holding one stripe while
/// taking another of the same family then shows up as a self-loop.
fn receiver_key(toks: &[Token], dot: usize, f: &crate::FnSpan) -> Option<(String, usize)> {
    // Walk back over `ident ( [index] )? ( . ident ( [index] )? )*`,
    // tolerating interposed `()` for calls like `.as_ref()` is NOT
    // attempted: a `)` aborts.
    let mut idx = dot;
    let mut chain: Vec<String> = Vec::new();
    let mut indexed = false;
    loop {
        if idx == 0 {
            break;
        }
        let prev = &toks[idx - 1];
        match &prev.kind {
            Tok::Ident(id) => {
                chain.push(id.clone());
                idx -= 1;
                // Continue only over a further `.`
                if idx > 0 && toks[idx - 1].kind.is_punct('.') {
                    idx -= 1;
                    continue;
                }
                break;
            }
            // `shards[i]` (or any balanced index expression): skip back
            // to the matching `[` and abstract the index to `[_]`.
            Tok::Punct(']') => {
                let mut bdepth = 1i32;
                let mut k = idx - 1;
                while k > 0 && bdepth > 0 {
                    k -= 1;
                    match &toks[k].kind {
                        Tok::Punct('[') => bdepth -= 1,
                        Tok::Punct(']') => bdepth += 1,
                        _ => {}
                    }
                }
                if bdepth != 0 {
                    break; // unmatched bracket: give up on the chain
                }
                chain.push("[_]".to_string());
                indexed = true;
                idx = k; // toks[k] is `[`; the array ident precedes it
            }
            _ => break,
        }
    }
    // Fuse `[_]` markers onto the identifier they index.
    chain.reverse();
    let mut parts: Vec<String> = Vec::new();
    for c in chain {
        if c == "[_]" {
            match parts.last_mut() {
                Some(last) => last.push_str("[_]"),
                None => return None, // chain started at the bracket
            }
        } else {
            parts.push(c);
        }
    }
    if parts.is_empty() {
        return None;
    }
    let key = if indexed {
        // Stripe keys carry the whole path: `pages` alone would merge
        // every stripe family member with any same-named plain field.
        if parts[0] == "self" && parts.len() >= 2 {
            match &f.impl_type {
                Some(t) => format!("{t}.{}", parts[1..].join(".")),
                None => parts[1..].join("."),
            }
        } else {
            parts.join(".")
        }
    } else if parts[0] == "self" && parts.len() >= 2 {
        match &f.impl_type {
            Some(t) => format!("{t}.{}", parts.last().unwrap()),
            None => parts.last().unwrap().clone(),
        }
    } else {
        parts.last().unwrap().clone()
    };
    Some((key, idx))
}

/// How long does the guard acquired by the expression starting at
/// `chain_start` live? Scans the statement prefix (back to the nearest
/// `;`/`{`/`}`) for, in priority order: a `match`/`if`/`while`
/// scrutinee position (guard lives for the construct's block — Rust
/// extends scrutinee temporaries, which is exactly the
/// `if let Some(x) = m.lock().get(…)` deadlock footgun), a `let … =`
/// binding (guard lives to end of the enclosing block — but only when
/// the `let` binds the guard itself, i.e. `chained` is false), or
/// anything else (temporary: dies at end of statement).
fn binding_of(
    toks: &[Token],
    chain_start: usize,
    body_start: usize,
    depth: i32,
    chained: bool,
) -> (GuardKind, i32, Option<String>) {
    let lo = chain_start.saturating_sub(16).max(body_start);
    let mut saw_eq = false;
    let mut let_name: Option<String> = None;
    let mut j = chain_start;
    while j > lo {
        j -= 1;
        match &toks[j].kind {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            Tok::Ident(id) if id == "match" || id == "while" || id == "if" => {
                return (GuardKind::Block, depth + 1, None);
            }
            Tok::Punct('=') if !saw_eq => {
                saw_eq = true;
                if j >= 1 {
                    if let Tok::Ident(name) = &toks[j - 1].kind {
                        let mut k = j - 1;
                        if k > 0 && toks[k - 1].kind.is_ident("mut") {
                            k -= 1;
                        }
                        if k > 0 && toks[k - 1].kind.is_ident("let") {
                            let_name = Some(name.clone());
                        }
                    }
                }
            }
            _ => {}
        }
    }
    match let_name {
        Some(name) if !chained => (GuardKind::Block, depth, Some(name)),
        _ => (GuardKind::Stmt, depth, None),
    }
}

/// Tarjan strongly-connected components over the lock graph.
fn tarjan<'a>(adj: &BTreeMap<&'a str, Vec<&'a Edge>>) -> Vec<Vec<&'a str>> {
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (n, es) in adj {
        nodes.insert(n);
        for e in es {
            nodes.insert(e.to.as_str());
        }
    }
    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }
    let idx_of: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let node_list: Vec<&str> = nodes.iter().copied().collect();
    let mut state = vec![NodeState::default(); node_list.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<&str>> = Vec::new();

    // Iterative Tarjan (explicit work stack: (node, child-cursor)).
    for start in 0..node_list.len() {
        if state[start].index.is_some() {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, cursor)) = work.last() {
            if cursor == 0 && state[v].index.is_none() {
                state[v].index = Some(next_index);
                state[v].lowlink = next_index;
                next_index += 1;
                stack.push(v);
                state[v].on_stack = true;
            }
            let succs: Vec<usize> = adj
                .get(node_list[v])
                .map(|es| es.iter().map(|e| idx_of[e.to.as_str()]).collect())
                .unwrap_or_default();
            if cursor < succs.len() {
                work.last_mut().expect("non-empty").1 += 1;
                let w = succs[cursor];
                if state[w].index.is_none() {
                    work.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.unwrap());
                }
            } else {
                work.pop();
                if let Some(&(p, _)) = work.last() {
                    let vl = state[v].lowlink;
                    state[p].lowlink = state[p].lowlink.min(vl);
                }
                if state[v].lowlink == state[v].index.unwrap() {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        state[w].on_stack = false;
                        comp.push(node_list[w]);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

/// Reconstruct one concrete cycle inside an SCC for the report.
fn witness_cycle<'a>(
    adj: &'a BTreeMap<&'a str, Vec<&'a Edge>>,
    scc: &[&'a str],
) -> Option<Vec<&'a Edge>> {
    let inside: BTreeSet<&str> = scc.iter().copied().collect();
    let start = *scc.iter().min()?;
    // BFS from `start` back to `start` staying inside the SCC.
    let mut prev: BTreeMap<&str, &Edge> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for &e in adj.get(n).into_iter().flatten() {
            let to = e.to.as_str();
            if !inside.contains(to) {
                continue;
            }
            if to == start {
                // Unwind.
                let mut path = vec![e];
                let mut cur = n;
                while cur != start {
                    let pe = *prev.get(cur)?;
                    path.push(pe);
                    cur = pe.from.as_str();
                }
                path.reverse();
                return Some(path);
            }
            if !prev.contains_key(to) {
                prev.insert(to, e);
                queue.push_back(to);
            }
        }
    }
    None
}
