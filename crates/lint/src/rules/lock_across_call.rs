//! `lock-across-call` — no lock guard live across a blocking call.
//!
//! A `parking_lot` guard held across an RaTP `call`/`call_many`/`send`
//! (or a channel send/recv) couples local mutual exclusion to remote
//! progress: the reply may take a full timeout-retry cycle — or
//! require the very lock being held, via a re-entrant request — and
//! every other thread needing the lock stalls with it. Two real bugs
//! of this class were fixed by hand in PRs 5–6 (simnet `deliver`
//! holding the limbo lock across channel sends; the DSM server's
//! busy-flag protocol exists precisely to keep stripe locks off RPC
//! paths). This rule generalizes the review discipline.
//!
//! Detection: for every call site recorded with a non-empty held-guard
//! set, the site is flagged if the callee is itself a blocking
//! primitive (method-form name match against
//! [`crate::Config::blocking_methods`]), or if any same-named
//! workspace function reaches one within the bounded call graph — the
//! witness chain is reported. Stoplisted names are never followed, so
//! `map.insert(…)` under a guard cannot pick up an `Endpoint::insert`
//! somewhere that blocks; but a *direct* `tx.send(…)` under a guard is
//! exactly the bug and is always reported.

use crate::summary::Summaries;
use crate::{Config, Finding};

pub fn check(sums: &Summaries, cfg: &Config, findings: &mut Vec<Finding>) {
    for f in &sums.fns {
        for c in &f.calls {
            if c.held.is_empty() {
                continue;
            }
            let held = c.held.join(", ");
            if c.blocking_direct {
                findings.push(Finding {
                    file: f.file.clone(),
                    line: c.line,
                    rule: "lock-across-call",
                    message: format!(
                        "guard `{held}` held across blocking `.{}(…)` in {}() — \
                         local mutual exclusion now waits on remote progress",
                        c.callee, f.name
                    ),
                });
                continue;
            }
            if c.stoplisted {
                continue;
            }
            for cand in sums.candidates(c, f) {
                if let Some(chain) = sums.reaches(cand, cfg.max_call_depth, |g| {
                    g.blocks_directly()
                }) {
                    let end = &sums.fns[sums
                        .fns
                        .iter()
                        .position(|g| g.name == *chain.last().expect("non-empty chain"))
                        .expect("witness names a summarized fn")];
                    let block = end
                        .first_blocking()
                        .map(|b| format!(".{}(…)", b.callee))
                        .unwrap_or_default();
                    findings.push(Finding {
                        file: f.file.clone(),
                        line: c.line,
                        rule: "lock-across-call",
                        message: format!(
                            "guard `{held}` held in {}() across call to {}() which \
                             may block ({} → {block}) — local mutual exclusion now \
                             waits on remote progress",
                            f.name,
                            c.callee,
                            chain.join(" → "),
                        ),
                    });
                    break;
                }
            }
        }
    }
}
