//! Determinism rules.
//!
//! * `wall-clock` — in simulation crates (scheduled purely in virtual
//!   time) any read of the OS clock or wall-clock sleep breaks the
//!   byte-identical same-seed guarantee: ban `std::time::Instant`,
//!   `SystemTime`, and `std::thread::sleep` in their `src/`.
//! * `os-entropy` — OS randomness (`thread_rng`, `OsRng`,
//!   `from_entropy`, `getrandom`, `rand::random`) is banned in *all*
//!   library code: every random choice must derive from the run seed.
//! * `std-sync-lock` — `std::sync::{Mutex, RwLock, Condvar}` are banned
//!   in library code: the workspace standardizes on `parking_lot`
//!   (no poisoning — a panicking IsiBa must not wedge every later
//!   acquisition into an unwrap-on-poison decision) and the lock-order
//!   rule only models one lock vocabulary.

use crate::{path_chain_at, Finding, SourceFile};

/// (rule, pattern, explanation). A pattern matches a `::`-joined path
/// chain whose trailing segments equal it, e.g. `thread::sleep` matches
/// `std::thread::sleep` and a `use std::thread;`-style `thread::sleep`.
const WALL_CLOCK: &[(&str, &str)] = &[
    ("time::Instant", "wall-clock type in a virtual-time crate"),
    ("Instant::now", "wall-clock read in a virtual-time crate"),
    ("time::SystemTime", "wall-clock type in a virtual-time crate"),
    ("SystemTime::now", "wall-clock read in a virtual-time crate"),
    ("thread::sleep", "wall-clock sleep in a virtual-time crate"),
];

const ENTROPY: &[(&str, &str)] = &[
    ("thread_rng", "OS-seeded RNG; derive randomness from the run seed"),
    ("OsRng", "OS entropy source; derive randomness from the run seed"),
    ("from_entropy", "OS entropy source; derive randomness from the run seed"),
    ("getrandom", "OS entropy source; derive randomness from the run seed"),
    ("rand::random", "OS-seeded RNG; derive randomness from the run seed"),
];

const STD_SYNC: &[(&str, &str)] = &[
    ("sync::Mutex", "use parking_lot::Mutex (no poisoning, lock-order analyzable)"),
    ("sync::RwLock", "use parking_lot::RwLock (no poisoning, lock-order analyzable)"),
    ("sync::Condvar", "use parking_lot::Condvar (pairs with parking_lot::Mutex)"),
];

pub fn check(files: &[SourceFile], cfg: &crate::Config, findings: &mut Vec<Finding>) {
    for sf in files {
        if !sf.info.is_src {
            continue;
        }
        let in_sim = sf
            .info
            .crate_name
            .as_deref()
            .is_some_and(|c| cfg.sim_crates.iter().any(|s| s == c));
        let toks = &sf.runtime_tokens;
        let mut i = 0;
        while i < toks.len() {
            let Some((chain, next)) = path_chain_at(toks, i) else {
                i += 1;
                continue;
            };
            let line = toks[i].line;
            // `use std::sync::{Mutex, Arc}` — expand the group into
            // virtual chains `std::sync::Mutex`, `std::sync::Arc`.
            let mut chains = vec![chain.clone()];
            if next + 1 < toks.len()
                && matches!(toks[next].kind, crate::lexer::Tok::PathSep)
                && toks[next + 1].kind.is_punct('{')
            {
                let mut j = next + 2;
                let mut depth = 1;
                while j < toks.len() && depth > 0 {
                    match &toks[j].kind {
                        crate::lexer::Tok::Punct('{') => depth += 1,
                        crate::lexer::Tok::Punct('}') => depth -= 1,
                        crate::lexer::Tok::Ident(id) => {
                            let mut c = chain.clone();
                            c.push(id.clone());
                            chains.push(c);
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            for chain in &chains {
                if in_sim {
                    scan(chain, WALL_CLOCK, "wall-clock", sf, line, findings);
                }
                scan(chain, ENTROPY, "os-entropy", sf, line, findings);
                scan(chain, STD_SYNC, "std-sync-lock", sf, line, findings);
            }
            i = next.max(i + 1);
        }
    }
}

fn scan(
    chain: &[String],
    patterns: &[(&str, &str)],
    rule: &'static str,
    sf: &SourceFile,
    line: u32,
    findings: &mut Vec<Finding>,
) {
    for (pat, why) in patterns {
        let want: Vec<&str> = pat.split("::").collect();
        let matched = if want.len() == 1 {
            chain.iter().any(|s| s == want[0])
        } else {
            chain.len() >= want.len()
                && chain
                    .windows(want.len())
                    .any(|w| w.iter().map(String::as_str).eq(want.iter().copied()))
        };
        if matched {
            findings.push(Finding {
                file: sf.info.rel.clone(),
                line,
                rule,
                message: format!("`{}`: {}", chain.join("::"), why),
            });
            return; // one finding per chain is enough
        }
    }
}
