//! `obs-schema` — metric names must round-trip through the manifest.
//!
//! Counters and histograms are registered by string name
//! (`obs.counter("dsm.client.fetch_rpcs")`) and read back by string
//! name in bench/paper-table code (`registry.histogram_summary(…)`).
//! A typo on either side doesn't fail — it silently mints a new
//! zero-valued metric, and a renamed counter quietly zeroes every
//! report built on the old name. `OBS_SCHEMA.md` is the single source
//! of truth: every metric-name literal in library code must appear
//! there (`unregistered metric`), and every manifest entry must still
//! be used somewhere (`stale manifest entry`), so drift is loud in
//! both directions.

use crate::lexer::Tok;
use crate::{Config, Finding, SourceFile};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Registration/lookup methods whose first string-literal argument is a
/// metric name.
const METRIC_METHODS: &[&str] = &[
    "counter",
    "histogram",
    "counter_value",
    "histogram_summary",
];

pub fn check(root: &Path, files: &[SourceFile], cfg: &Config, findings: &mut Vec<Finding>) {
    // Metric-name uses: method("literal") in src code (tests may invent
    // scratch names freely).
    let mut used: BTreeMap<String, (String, u32)> = BTreeMap::new();
    for sf in files {
        if !sf.info.is_src {
            continue;
        }
        let toks = &sf.runtime_tokens;
        for i in 0..toks.len() {
            let Some(meth) = toks[i].kind.ident() else { continue };
            if !METRIC_METHODS.contains(&meth) {
                continue;
            }
            // Require a method-call or registry-call shape: `.meth("…")`.
            if i == 0 || !toks[i - 1].kind.is_punct('.') {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|t| t.kind.is_punct('(')) {
                continue;
            }
            let Some(Tok::Str(name)) = toks.get(i + 2).map(|t| &t.kind) else {
                continue;
            };
            used.entry(name.clone())
                .or_insert_with(|| (sf.info.rel.clone(), toks[i + 2].line));
        }
    }

    let manifest_path = root.join(&cfg.obs_manifest);
    let manifest_src = std::fs::read_to_string(&manifest_path).unwrap_or_default();
    if manifest_src.is_empty() {
        if !used.is_empty() {
            findings.push(Finding {
                file: cfg.obs_manifest.clone(),
                line: 1,
                rule: "obs-schema",
                message: format!(
                    "metric manifest `{}` is missing but {} metric name(s) are used",
                    cfg.obs_manifest,
                    used.len()
                ),
            });
        }
        return;
    }
    let manifest = parse_manifest(&manifest_src);

    for (name, (file, line)) in &used {
        if !manifest.contains_key(name) {
            findings.push(Finding {
                file: file.clone(),
                line: *line,
                rule: "obs-schema",
                message: format!(
                    "unregistered metric `{name}`: add it to {} or fix the name",
                    cfg.obs_manifest
                ),
            });
        }
    }
    for (name, line) in &manifest {
        if !used.contains_key(name) {
            findings.push(Finding {
                file: cfg.obs_manifest.clone(),
                line: *line,
                rule: "obs-schema",
                message: format!(
                    "stale manifest entry `{name}`: no src code registers or reads it"
                ),
            });
        }
    }
}

/// Manifest entries: the first backtick-quoted token of each `|`-table
/// row (header/separator rows carry no backticks and are skipped).
fn parse_manifest(src: &str) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    for (idx, line) in src.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let Some(open) = line.find('`') else { continue };
        let rest = &line[open + 1..];
        let Some(close) = rest.find('`') else { continue };
        let name = rest[..close].trim();
        if !name.is_empty() {
            out.entry(name.to_string()).or_insert(idx as u32 + 1);
        }
    }
    out
}

/// Names seen in the manifest — exposed for the doc test in `tests/`.
pub fn manifest_names(src: &str) -> BTreeSet<String> {
    parse_manifest(src).into_keys().collect()
}
