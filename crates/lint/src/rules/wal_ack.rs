//! `wal-before-ack` — acknowledged durable mutations must be logged.
//!
//! The PR-8 recovery contract: a data server may acknowledge a
//! mutation only after the corresponding record is in the append-only
//! stable log, because crash recovery replays *only* the log — an
//! acked-but-unlogged write is silently lost, violating the Clouds
//! recoverability invariant ("committed data survives node failure").
//!
//! For every [`crate::AckHandlerSpec`], the rule slices the handler's
//! body into the arms of its `match` over the wire request enum and
//! checks each arm: if the arm (directly or through the bounded,
//! name-matched call graph) both **mutates durable state** and
//! **constructs a non-error reply variant**, it must also reach a
//! `log.append(…)` site. The check is reachability, not ordering —
//! idempotent-duplicate early returns legitimately ack before the
//! logging path (e.g. a mirror write already applied), so an
//! ordering check would flood them with false positives; an arm with
//! *no* path to the log at all is the bug class this catches.

use crate::summary::{match_arms, Summaries};
use crate::{Config, Finding};

pub fn check(files: &[crate::SourceFile], sums: &Summaries, cfg: &Config, findings: &mut Vec<Finding>) {
    for spec in &cfg.ack_handlers {
        let ack_prefix = format!("{}::", spec.reply_enum);
        for handler in sums.fns.iter().filter(|f| {
            f.name == spec.handler_method && f.impl_type.as_deref() == Some(spec.handler_type)
        }) {
            let toks = &files[handler.file_idx].runtime_tokens;
            for arm in match_arms(toks, handler.body, spec.request_enum) {
                let in_arm = |tok: usize| tok >= arm.range.0 && tok < arm.range.1;

                let mutates = handler
                    .durable_mutations
                    .iter()
                    .find(|s| in_arm(s.tok))
                    .map(|s| s.what.clone())
                    .or_else(|| {
                        sums.calls_reach(handler, arm.range, cfg.max_call_depth, |f| {
                            !f.durable_mutations.is_empty()
                        })
                        .map(|chain| format!("via {}", chain.join(" → ")))
                    });
                let Some(mutation) = mutates else { continue };

                let acks = handler
                    .acks
                    .iter()
                    .any(|s| in_arm(s.tok) && s.what.starts_with(&ack_prefix))
                    || sums
                        .calls_reach(handler, arm.range, cfg.max_call_depth, |f| {
                            f.acks.iter().any(|s| s.what.starts_with(&ack_prefix))
                        })
                        .is_some();
                if !acks {
                    continue;
                }

                let logs = handler.log_appends.iter().any(|s| in_arm(s.tok))
                    || sums
                        .calls_reach(handler, arm.range, cfg.max_call_depth, |f| {
                            !f.log_appends.is_empty()
                        })
                        .is_some();
                if logs {
                    continue;
                }

                findings.push(Finding {
                    file: handler.file.clone(),
                    line: arm.line,
                    rule: "wal-before-ack",
                    message: format!(
                        "{}::{} handler arm `{}::{}` mutates durable state ({}) and \
                         replies with a non-error `{}` but no path reaches \
                         `log.append` — an acked write that crash recovery cannot \
                         replay",
                        spec.handler_type,
                        spec.handler_method,
                        spec.request_enum,
                        arm.variant,
                        mutation,
                        spec.reply_enum,
                    ),
                });
            }
        }
    }
}
