//! `fence-before-apply` — wire-dispatched segment ops must pass the
//! replica-epoch serving fence before touching the store.
//!
//! The PR-6 bug class: a demoted ex-primary (or a backup) that applies
//! a client op to its local store without first checking that it still
//! *serves* the segment writes on the wrong side of a promotion —
//! split-brain write loss. The original instance was `WriteBackBatch`
//! silently bypassing `check_serving` while every other arm had it.
//!
//! For every [`crate::FenceSpec`], each arm of the handler's `match`
//! over the wire request enum that (directly or through the bounded
//! call graph) touches the segment store must also reach one of the
//! fence functions — except the variants the spec exempts (creation
//! ops act before the segment is served; the mirror/promotion plane
//! carries its own epoch checks). When an arm has both a direct store
//! touch and a direct fence, the touch must not come first: the fence
//! read *after* the write is the same bug with extra steps. (Ordering
//! across call boundaries is not modeled — a fence reached only via a
//! callee is trusted to precede that callee's own touches, which holds
//! for every per-page loop in the workspace.)

use crate::summary::{match_arms, Summaries};
use crate::{Config, Finding};

pub fn check(files: &[crate::SourceFile], sums: &Summaries, cfg: &Config, findings: &mut Vec<Finding>) {
    for spec in &cfg.fences {
        for handler in sums.fns.iter().filter(|f| {
            f.name == spec.handler_method && f.impl_type.as_deref() == Some(spec.handler_type)
        }) {
            let toks = &files[handler.file_idx].runtime_tokens;
            for arm in match_arms(toks, handler.body, spec.request_enum) {
                if spec.exempt_variants.contains(&arm.variant.as_str()) {
                    continue;
                }
                let in_arm = |tok: usize| tok >= arm.range.0 && tok < arm.range.1;

                let touch = handler
                    .store_touches
                    .iter()
                    .find(|s| in_arm(s.tok))
                    .map(|s| (s.tok, s.what.clone()))
                    .or_else(|| {
                        sums.calls_reach(handler, arm.range, cfg.max_call_depth, |f| {
                            !f.store_touches.is_empty()
                        })
                        .map(|chain| (arm.range.1, format!("via {}", chain.join(" → "))))
                    });
                let Some((touch_tok, touch_what)) = touch else {
                    continue;
                };

                let direct_fence = handler.fence_checks.iter().find(|s| in_arm(s.tok));
                let fenced = direct_fence.is_some()
                    || sums
                        .calls_reach(handler, arm.range, cfg.max_call_depth, |f| {
                            !f.fence_checks.is_empty()
                        })
                        .is_some();

                if !fenced {
                    findings.push(Finding {
                        file: handler.file.clone(),
                        line: arm.line,
                        rule: "fence-before-apply",
                        message: format!(
                            "{}::{} handler arm `{}::{}` touches the segment store \
                             ({}) without passing the epoch fence ({}) — a demoted \
                             replica would apply the op after losing the segment \
                             (split-brain write loss)",
                            spec.handler_type,
                            spec.handler_method,
                            spec.request_enum,
                            arm.variant,
                            touch_what,
                            cfg.fence_fns.join("/"),
                        ),
                    });
                } else if let Some(fence) = direct_fence {
                    // Direct-order check: a store touch textually before
                    // the arm's own fence call.
                    if touch_tok < fence.tok {
                        findings.push(Finding {
                            file: handler.file.clone(),
                            line: arm.line,
                            rule: "fence-before-apply",
                            message: format!(
                                "{}::{} handler arm `{}::{}` touches the segment \
                                 store ({}) before its epoch fence ({}) — the \
                                 check must precede the apply",
                                spec.handler_type,
                                spec.handler_method,
                                spec.request_enum,
                                arm.variant,
                                touch_what,
                                fence.what,
                            ),
                        });
                    }
                }
            }
        }
    }
}
