//! Lint rules. Each module exposes `check(...)` appending [`Finding`]s;
//! suppression and sorting happen centrally in [`crate::run`].

pub mod determinism;
pub mod dispatch;
pub mod fence;
pub mod hash_iter;
pub mod lock_across_call;
pub mod locks;
pub mod obs_schema;
pub mod wal_ack;
