//! `dispatch-arm` — protocol-enum conformance.
//!
//! RaTP's at-most-once contract (and DSM's coherence protocol on top of
//! it) only holds if every wire-visible enum variant is actually
//! handled: a variant added to `PacketKind` or `DsmRequest` without a
//! dispatch arm silently falls into a `_ =>` reply (or worse, a
//! panic) on live nodes. For each configured enum, every variant must
//! appear as a match arm (`Enum::Variant … =>`, `|`-alternations
//! included) in at least one of the configured handler files.

use crate::lexer::{Tok, Token};
use crate::{Config, Finding, SourceFile};

pub fn check(files: &[SourceFile], cfg: &Config, findings: &mut Vec<Finding>) {
    for spec in &cfg.dispatch {
        let Some(def) = files.iter().find(|f| f.info.rel.ends_with(spec.def_suffix)) else {
            // Enum's defining file isn't part of this tree (e.g. a
            // fixture run that doesn't model this protocol): skip.
            continue;
        };
        let variants = enum_variants(&def.lexed.tokens, spec.enum_name);
        if variants.is_empty() {
            continue;
        }
        let handlers: Vec<&SourceFile> = files
            .iter()
            .filter(|f| {
                spec.handler_suffixes
                    .iter()
                    .any(|s| f.info.rel.ends_with(s))
            })
            .collect();
        if handlers.is_empty() {
            continue;
        }
        for (variant, def_line) in &variants {
            let handled = handlers
                .iter()
                .any(|h| has_match_arm(&h.lexed.tokens, spec.enum_name, variant));
            if !handled {
                findings.push(Finding {
                    file: def.info.rel.clone(),
                    line: *def_line,
                    rule: "dispatch-arm",
                    message: format!(
                        "`{}::{}` has no dispatch arm in {} — a wire-visible variant \
                         nobody handles",
                        spec.enum_name,
                        variant,
                        spec.handler_suffixes.join(", ")
                    ),
                });
            }
        }
    }
}

/// Variants of `enum name { … }`: first identifier of each variant at
/// depth 1, skipping attributes and payload/discriminant tokens.
fn enum_variants(toks: &[Token], name: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind.is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.kind.is_ident(name))
        {
            // Skip generics to `{`.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].kind.is_punct('{') {
                j += 1;
            }
            let mut depth = 1i32;
            j += 1;
            let mut expect_variant = true;
            while j < toks.len() && depth > 0 {
                match &toks[j].kind {
                    Tok::Punct('{') | Tok::Punct('(') | Tok::Punct('[') => {
                        depth += 1;
                    }
                    Tok::Punct('}') | Tok::Punct(')') | Tok::Punct(']') => {
                        depth -= 1;
                    }
                    Tok::Punct(',') if depth == 1 => expect_variant = true,
                    Tok::Punct('#') if depth == 1
                        // Attribute on the next variant; skip `[…]`.
                        && toks.get(j + 1).is_some_and(|t| t.kind.is_punct('[')) => {
                            let mut d = 0i32;
                            j += 1;
                            while j < toks.len() {
                                match toks[j].kind {
                                    Tok::Punct('[') => d += 1,
                                    Tok::Punct(']') => {
                                        d -= 1;
                                        if d == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                        }
                    Tok::Ident(v) if depth == 1 && expect_variant => {
                        out.push((v.clone(), toks[j].line));
                        expect_variant = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// True when the token stream contains `Enum::Variant … =>` (with an
/// optional `{…}`/`(…)` binding pattern and `|` alternations between).
fn has_match_arm(toks: &[Token], enum_name: &str, variant: &str) -> bool {
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].kind.is_ident(enum_name)
            && matches!(toks[i + 1].kind, Tok::PathSep)
            && toks[i + 2].kind.is_ident(variant)
        {
            // Scan forward: skip one balanced `{…}` or `(…)` pattern,
            // allow `|` alternation chains, stop at `=>` (found) or
            // anything else (not an arm).
            let mut j = i + 3;
            loop {
                match toks.get(j).map(|t| &t.kind) {
                    Some(Tok::Punct('{')) | Some(Tok::Punct('(')) => {
                        let open = if toks[j].kind.is_punct('{') { '{' } else { '(' };
                        let close = if open == '{' { '}' } else { ')' };
                        let mut d = 0i32;
                        while j < toks.len() {
                            if toks[j].kind.is_punct(open) {
                                d += 1;
                            } else if toks[j].kind.is_punct(close) {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                        j += 1;
                    }
                    Some(Tok::Punct('|')) => {
                        // Alternation: skip the next pattern path.
                        j += 1;
                        while j < toks.len()
                            && (toks[j].kind.ident().is_some()
                                || matches!(toks[j].kind, Tok::PathSep))
                        {
                            j += 1;
                        }
                    }
                    // The variant may sit inside a wrapper pattern —
                    // `Ok(RecallRequest::Reclaim { .. }) =>` — so closing
                    // delimiters before the `=>` are fine to step over.
                    Some(Tok::Punct(')')) => {
                        j += 1;
                    }
                    Some(Tok::Punct('=')) if toks.get(j + 1).is_some_and(|t| t.kind.is_punct('>')) => {
                        return true;
                    }
                    _ => break,
                }
            }
        }
        i += 1;
    }
    false
}
