//! `hash-iter` — iteration over `HashMap`/`HashSet` in library code.
//!
//! `std`'s hash collections iterate in a per-instance, per-process
//! random order (SipHash with a random key). In this codebase *any*
//! iteration order can leak into canonical output: RPC fan-out order
//! determines virtual-time billing and trace-event order, wire batches
//! serialize in build order, and registry/trace dumps must be
//! byte-identical across same-seed runs. So iterating a hash collection
//! in `src/` is flagged wholesale; sites where order provably cannot
//! matter (e.g. a commutative `max()` reduction) carry a
//! `lint:allow(hash-iter)` with the proof in the comment, and
//! everything else uses `BTreeMap`/`BTreeSet` or sorts first.
//!
//! Resolution is scoped: struct fields are collected file-wide, while
//! `let` bindings and parameters are resolved per function (so a slice
//! parameter named like a hash field doesn't false-positive). One level
//! of guard aliasing is followed: `let g = self.field.lock()` marks `g`
//! hash-typed when `field` is.

use crate::lexer::{Tok, Token};
use crate::{functions, Finding, SourceFile};
use std::collections::BTreeMap;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "into_keys",
    "into_values",
    "retain",
];

const GUARD_METHODS: &[&str] = &["lock", "read", "write", "borrow", "borrow_mut"];

pub fn check(files: &[SourceFile], findings: &mut Vec<Finding>) {
    for sf in files {
        if !sf.info.is_src {
            continue;
        }
        let toks = &sf.runtime_tokens;
        let fields = struct_fields(toks);
        for f in functions(toks) {
            let locals = fn_locals(toks, &f, &fields);
            scan_body(toks, f.body, &locals, &fields, sf, findings);
        }
    }
}

/// `struct X { name: Type, … }` fields, true = hash-typed.
fn struct_fields(toks: &[Token]) -> BTreeMap<String, bool> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].kind.is_ident("struct") {
            i += 1;
            continue;
        }
        // Skip name + generics to `{` (or `;`/`(` for unit/tuple structs).
        let mut j = i + 1;
        let mut angle = 0i32;
        while j < toks.len() {
            match toks[j].kind {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('{') if angle <= 0 => break,
                Tok::Punct(';') | Tok::Punct('(') if angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if !toks.get(j).is_some_and(|t| t.kind.is_punct('{')) {
            i = j + 1;
            continue;
        }
        // Fields at depth 1: `name :` followed by type tokens up to the
        // `,` (or `}`) at depth 1.
        let mut depth = 1i32;
        j += 1;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                Tok::Punct('{') | Tok::Punct('<') | Tok::Punct('(') => depth += 1,
                Tok::Punct('}') | Tok::Punct('>') | Tok::Punct(')') => depth -= 1,
                Tok::Ident(name)
                    if depth == 1 && toks.get(j + 1).is_some_and(|t| t.kind.is_punct(':')) =>
                {
                    // Type tokens until `,` at depth 1.
                    let mut k = j + 2;
                    let mut d = 0i32;
                    let mut hash = false;
                    while k < toks.len() {
                        match &toks[k].kind {
                            Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => d += 1,
                            Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => {
                                if d == 0 {
                                    break;
                                }
                                d -= 1;
                            }
                            Tok::Punct(',') if d == 0 => break,
                            Tok::Punct('}') if d == 0 => break,
                            Tok::Ident(t) if t == "HashMap" || t == "HashSet" => hash = true,
                            _ => {}
                        }
                        k += 1;
                    }
                    out.insert(name.clone(), hash);
                    j = k;
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
    out
}

/// Parameters and `let` bindings of one function, true = hash-typed.
fn fn_locals(
    toks: &[Token],
    f: &crate::FnSpan,
    fields: &BTreeMap<String, bool>,
) -> BTreeMap<String, bool> {
    let mut out = BTreeMap::new();
    // Parameters: `name : type` pairs at comma depth 0.
    let (ps, pe) = f.params;
    let mut depth = 0i32;
    let mut j = ps;
    while j < pe.min(toks.len()) {
        match &toks[j].kind {
            Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Ident(name)
                if depth == 0
                    && name != "self"
                    && name != "mut"
                    && toks.get(j + 1).is_some_and(|t| t.kind.is_punct(':')) =>
            {
                let mut k = j + 2;
                let mut d = 0i32;
                let mut hash = false;
                while k < pe.min(toks.len()) {
                    match &toks[k].kind {
                        Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => d += 1,
                        Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => {
                            if d == 0 {
                                break;
                            }
                            d -= 1;
                        }
                        Tok::Punct(',') if d == 0 => break,
                        Tok::Ident(t) if t == "HashMap" || t == "HashSet" => hash = true,
                        _ => {}
                    }
                    k += 1;
                }
                out.insert(name.clone(), hash);
                j = k;
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    // `let [mut] name [: ty] = init ;` in the body, in order, so guard
    // aliases can see earlier bindings.
    let (bs, be) = f.body;
    let mut i = bs;
    while i < be.min(toks.len()) {
        if !toks[i].kind.is_ident("let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.kind.is_ident("mut")) {
            j += 1;
        }
        let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.kind) else {
            i = j;
            continue;
        };
        let name = name.clone();
        let mut k = j + 1;
        let mut hash: Option<bool> = None;
        if toks.get(k).is_some_and(|t| t.kind.is_punct(':')) {
            // Explicit annotation decides.
            let mut d = 0i32;
            let mut saw_hash = false;
            k += 1;
            while k < be.min(toks.len()) {
                match &toks[k].kind {
                    Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => d += 1,
                    Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => d -= 1,
                    Tok::Punct('=') | Tok::Punct(';') if d == 0 => break,
                    Tok::Ident(t) if t == "HashMap" || t == "HashSet" => saw_hash = true,
                    _ => {}
                }
                k += 1;
            }
            hash = Some(saw_hash);
        }
        let mut resume = k;
        if toks.get(k).is_some_and(|t| t.kind.is_punct('=')) {
            // Scan the initializer (to `;` at group depth 0).
            let init_start = k + 1;
            let mut d = 0i32;
            k += 1;
            let mut saw_hash = false;
            while k < be.min(toks.len()) {
                match &toks[k].kind {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => d += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => d -= 1,
                    Tok::Punct(';') if d == 0 => break,
                    Tok::Ident(t) if t == "HashMap" || t == "HashSet" => saw_hash = true,
                    _ => {}
                }
                k += 1;
            }
            if hash.is_none() {
                let aliased = guard_alias_of_hash(toks, init_start, k, &out, fields);
                hash = Some(saw_hash || aliased);
            }
            // Resume INSIDE the initializer: a block initializer
            // (`let x = { let inner = …; … };`) holds nested `let`s
            // the outer scan must still visit.
            resume = init_start;
        }
        out.insert(name, hash.unwrap_or(false));
        i = resume;
    }
    out
}

/// True when init tokens contain `<hash-name> . guard_method (` — a
/// lock/borrow guard over a hash collection.
fn guard_alias_of_hash(
    toks: &[Token],
    start: usize,
    end: usize,
    locals: &BTreeMap<String, bool>,
    fields: &BTreeMap<String, bool>,
) -> bool {
    let mut k = start;
    while k + 3 < end.min(toks.len()) {
        if let Tok::Ident(recv) = &toks[k].kind {
            let is_hash = locals
                .get(recv)
                .copied()
                .or_else(|| fields.get(recv).copied())
                .unwrap_or(false);
            if is_hash
                && toks[k + 1].kind.is_punct('.')
                && matches!(toks[k + 2].kind.ident(), Some(m) if GUARD_METHODS.contains(&m))
                && toks[k + 3].kind.is_punct('(')
            {
                return true;
            }
        }
        k += 1;
    }
    false
}

fn is_hash_at(
    toks: &[Token],
    i: usize,
    name: &str,
    locals: &BTreeMap<String, bool>,
    fields: &BTreeMap<String, bool>,
) -> bool {
    let field_access = i > 0 && toks[i - 1].kind.is_punct('.');
    if field_access {
        fields.get(name).copied().unwrap_or(false)
    } else {
        locals
            .get(name)
            .copied()
            .or_else(|| fields.get(name).copied())
            .unwrap_or(false)
    }
}

fn scan_body(
    toks: &[Token],
    (bs, be): (usize, usize),
    locals: &BTreeMap<String, bool>,
    fields: &BTreeMap<String, bool>,
    sf: &SourceFile,
    findings: &mut Vec<Finding>,
) {
    let end = be.min(toks.len());
    for i in bs..end {
        if let Tok::Ident(name) = &toks[i].kind {
            if is_hash_at(toks, i, name, locals, fields) {
                if let Some((meth, line)) = iterating_method(toks, i) {
                    findings.push(Finding {
                        file: sf.info.rel.clone(),
                        line,
                        rule: "hash-iter",
                        message: format!(
                            "`{name}.{meth}()` iterates a hash collection: order is \
                             per-process random and can reach canonical/wire/trace output \
                             — use BTreeMap/BTreeSet, sort first, or justify with \
                             lint:allow(hash-iter)"
                        ),
                    });
                }
            }
        }
        // `for pat in <expr ending in name> {`
        if toks[i].kind.is_ident("for") {
            // Find the loop `{` at group depth 0.
            let mut j = i + 1;
            let mut d = 0i32;
            while j < end {
                match toks[j].kind {
                    Tok::Punct('(') | Tok::Punct('[') => d += 1,
                    Tok::Punct(')') | Tok::Punct(']') => d -= 1,
                    Tok::Punct('{') if d == 0 => break,
                    Tok::Punct(';') if d == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j < end && toks[j].kind.is_punct('{') && j > i + 1 {
                if let Tok::Ident(name) = &toks[j - 1].kind {
                    if is_hash_at(toks, j - 1, name, locals, fields) {
                        findings.push(Finding {
                            file: sf.info.rel.clone(),
                            line: toks[j - 1].line,
                            rule: "hash-iter",
                            message: format!(
                                "`for … in {name}` iterates a hash collection: order is \
                                 per-process random and can reach canonical/wire/trace \
                                 output — use BTreeMap/BTreeSet, sort first, or justify \
                                 with lint:allow(hash-iter)"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// From a hash-typed name at `i`, look for `.lock()?.meth(` with an
/// iterating `meth`; returns (method, line).
fn iterating_method(toks: &[Token], i: usize) -> Option<(String, u32)> {
    let mut j = i + 1;
    // Skip up to two interposed guard-taking calls (`.lock()`, `.read()`…).
    for _ in 0..2 {
        if toks.get(j).is_some_and(|t| t.kind.is_punct('.'))
            && matches!(
                toks.get(j + 1).and_then(|t| t.kind.ident()),
                Some(m) if GUARD_METHODS.contains(&m)
            )
            && toks.get(j + 2).is_some_and(|t| t.kind.is_punct('('))
            && toks.get(j + 3).is_some_and(|t| t.kind.is_punct(')'))
        {
            j += 4;
        }
    }
    if !toks.get(j).is_some_and(|t| t.kind.is_punct('.')) {
        return None;
    }
    let meth = toks.get(j + 1).and_then(|t| t.kind.ident())?;
    if ITER_METHODS.contains(&meth) && toks.get(j + 2).is_some_and(|t| t.kind.is_punct('(')) {
        return Some((meth.to_string(), toks[j + 1].line));
    }
    None
}
