//! Fixture: a clean lock hierarchy (always accounts → audit), ordered
//! collections, registered metrics, and a justified allow.

use parking_lot::Mutex;
use std::collections::BTreeMap;

pub struct Table {
    accounts: Mutex<BTreeMap<u64, u64>>,
    audit: Mutex<Vec<u64>>,
}

impl Table {
    pub fn transfer(&self) {
        let accounts = self.accounts.lock();
        let mut audit = self.audit.lock();
        audit.push(accounts.len() as u64);
    }

    pub fn reconcile(&self) {
        let accounts = self.accounts.lock();
        let mut audit = self.audit.lock();
        audit.push(accounts.len() as u64 + 1);
    }

    pub fn dump(&self, obs: &Obs) -> Vec<u64> {
        obs.counter("good.metric");
        self.accounts.lock().keys().copied().collect()
    }
}

pub struct Obs;

impl Obs {
    pub fn counter(&self, _name: &str) {}
}
