//! Fixture: a clean stripe family — per-key operations lock exactly one
//! stripe, and the sweep visits stripes in ascending index order with at
//! most one guard alive at a time (released at each statement end), so
//! the ordered-index acquisition is acyclic by construction.

use parking_lot::Mutex;
use std::collections::BTreeMap;

pub struct Stripe {
    pages: Mutex<BTreeMap<u64, u64>>,
}

pub struct Grid {
    stripes: Vec<Stripe>,
}

impl Grid {
    pub fn bump(&self, i: usize) {
        self.stripes[i].pages.lock().insert(1, 1);
    }

    pub fn sweep(&self) {
        for i in 0..self.stripes.len() {
            self.stripes[i].pages.lock().clear();
        }
    }
}
