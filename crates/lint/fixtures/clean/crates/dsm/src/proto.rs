//! Fixture: the DSM wire protocol, every variant of which is handled
//! correctly in `server.rs`.

pub enum DsmRequest {
    FetchPage { seg: u64, page: u32 },
    WriteBack { seg: u64, page: u32 },
    CreateReplicated { seg: u64 },
    MirrorCreate { seg: u64 },
    MirrorPage { seg: u64, page: u32 },
    Promote { seg: u64, epoch: u64 },
    AdoptReplicaConfig { seg: u64, epoch: u64 },
}

pub enum DsmReply {
    Ok,
    Grant { version: u64 },
    Err(String),
}
