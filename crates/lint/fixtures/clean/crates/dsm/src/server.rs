//! Fixture: a DSM server handler that satisfies all three
//! inter-procedural rule families — every arm handled, every durable
//! mutation fenced and logged before its ack, no guard held across a
//! blocking call (dirty pages are drained under the lock, sent after
//! releasing it), and the one `lint:allow` present suppresses a live
//! finding, so stale-allow stays quiet too.

use crate::proto::{DsmReply, DsmRequest};

pub struct DsmServer {
    store: Store,
    log: Log,
    ratp: Ratp,
    dirty: parking_lot::Mutex<Vec<u32>>,
    wake_tx: Sender,
}

impl DsmServer {
    pub fn handle(&self, req: DsmRequest) -> DsmReply {
        match req {
            DsmRequest::FetchPage { seg, page } => {
                if !self.check_serving(seg) {
                    return DsmReply::Err("not serving".to_string());
                }
                let version = self.store.read_version(seg, page);
                DsmReply::Grant { version }
            }
            DsmRequest::WriteBack { seg, page } => self.apply_write(seg, page),
            DsmRequest::CreateReplicated { seg } => {
                self.store.create(seg);
                self.log.append(seg);
                DsmReply::Ok
            }
            DsmRequest::MirrorCreate { seg } => {
                self.store.create(seg);
                self.log.append(seg);
                DsmReply::Ok
            }
            DsmRequest::MirrorPage { seg, page } => self.apply_write(seg, page),
            DsmRequest::Promote { seg, epoch } => {
                self.log.append(seg + epoch);
                DsmReply::Ok
            }
            DsmRequest::AdoptReplicaConfig { seg, epoch } => {
                self.log.append(seg + epoch);
                DsmReply::Ok
            }
        }
    }

    /// Fence, mutate, log, ack — the full discipline.
    fn apply_write(&self, seg: u64, page: u32) -> DsmReply {
        if !self.check_serving(seg) {
            return DsmReply::Err("not serving".to_string());
        }
        self.store.write_page(seg, page);
        self.log.append(seg);
        DsmReply::Ok
    }

    fn check_serving(&self, seg: u64) -> bool {
        seg != 0
    }

    /// Drain under the lock, call after releasing it.
    fn flush_dirty(&self) {
        let drained: Vec<u32> = {
            let mut dirty = self.dirty.lock();
            dirty.drain(..).collect()
        };
        for page in drained {
            self.ratp.call(page);
        }
    }

    /// A *used* allow: the send really is under the guard, the
    /// suppression is live, and stale-allow must not fire on it.
    fn nudge(&self) {
        let dirty = self.dirty.lock();
        // lint:allow(lock-across-call) — wake_tx is unbounded; send never blocks.
        self.wake_tx.send(dirty.first());
    }
}

pub struct Store;
impl Store {
    pub fn read_version(&self, _seg: u64, _page: u32) -> u64 {
        0
    }
    pub fn write_page(&self, _seg: u64, _page: u32) {}
    pub fn create(&self, _seg: u64) {}
}

pub struct Log;
impl Log {
    pub fn append(&self, _rec: u64) {}
}

pub struct Ratp;
impl Ratp {
    pub fn call(&self, _page: u32) {}
}

pub struct Sender;
impl Sender {
    pub fn send(&self, _v: Option<&u32>) {}
}
