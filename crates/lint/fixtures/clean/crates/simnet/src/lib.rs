//! Fixture: a sim crate whose one wall-clock use carries a justified
//! allow — the escape hatch must suppress the finding.

pub fn pace() {
    // lint:allow(wall-clock) — fixture: real-time pacing by design.
    std::thread::sleep(std::time::Duration::from_millis(1));
}
