//! Fixture: an AB/BA lock cycle, a hash-order leak, and an
//! unregistered metric.

use parking_lot::Mutex;
use std::collections::HashMap;

pub struct Table {
    accounts: Mutex<HashMap<u64, u64>>,
    audit: Mutex<Vec<u64>>,
}

impl Table {
    pub fn transfer(&self) {
        let accounts = self.accounts.lock();
        let mut audit = self.audit.lock();
        audit.push(accounts.len() as u64);
    }

    pub fn reconcile(&self) {
        let audit = self.audit.lock();
        let mut accounts = self.accounts.lock();
        accounts.insert(0, audit.len() as u64);
    }

    pub fn dump(&self, obs: &Obs) -> Vec<u64> {
        obs.counter("bogus.metric");
        self.accounts.lock().keys().copied().collect()
    }
}

pub struct Obs;

impl Obs {
    pub fn counter(&self, _name: &str) {}
}
