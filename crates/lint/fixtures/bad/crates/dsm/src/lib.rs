//! Fixture: an AB/BA cycle between two members of a stripe family —
//! the indexed-receiver (`stripes[i]`) form of the classic two-lock
//! deadlock. The index must be abstracted (`Grid.stripes[_].pages`) for
//! the two functions' edges to meet in one graph.

use parking_lot::Mutex;
use std::collections::HashMap;

pub struct Stripe {
    pages: Mutex<HashMap<u64, u64>>,
    meta: Mutex<Vec<u64>>,
}

pub struct Grid {
    stripes: Vec<Stripe>,
}

impl Grid {
    pub fn upgrade(&self, i: usize) {
        let pages = self.stripes[i].pages.lock();
        let mut meta = self.stripes[i].meta.lock();
        meta.push(pages.len() as u64);
    }

    pub fn downgrade(&self, i: usize) {
        let meta = self.stripes[i].meta.lock();
        let mut pages = self.stripes[i].pages.lock();
        pages.insert(0, meta.len() as u64);
    }
}
