//! Fixture: a DSM server handler seeding one violation per
//! inter-procedural rule family, each scoped so it trips *only* its own
//! rule:
//!
//! * `WriteBack` — fenced, mutates, acks `Ok`, never logs
//!   → **wal-before-ack** (and nothing else);
//! * `FetchPage` — touches the store with no fence on any path
//!   → **fence-before-apply**;
//! * `flush_dirty` — stripe guard held across a blocking `.call(…)`
//!   → **lock-across-call**;
//! * the `lint:allow(wall-clock)` below anchors a line that produces no
//!   wall-clock finding → **stale-allow**;
//! * `AdoptReplicaConfig` has no arm → **dispatch-arm**.
//!
//! `MirrorPage` delegates to `apply_mirror`, which fences, mutates,
//! logs, and acks correctly — pinning that phase-2 propagation clears
//! an arm whose obligations are met inside a callee.

use crate::proto::{DsmReply, DsmRequest};

pub struct DsmServer {
    store: Store,
    log: Log,
    ratp: Ratp,
    dirty: parking_lot::Mutex<Vec<u32>>,
}

impl DsmServer {
    pub fn handle(&self, req: DsmRequest) -> DsmReply {
        match req {
            DsmRequest::FetchPage { seg, page } => {
                // No check_serving on any path: a demoted replica
                // would serve the read.
                let version = self.store.read_version(seg, page);
                DsmReply::Grant { version }
            }
            DsmRequest::WriteBack { seg, page } => {
                if !self.check_serving(seg) {
                    return DsmReply::Err("not serving".to_string());
                }
                // Mutates and acks, but no path reaches log.append:
                // crash recovery cannot replay this write.
                self.store.write_page(seg, page);
                DsmReply::Ok
            }
            DsmRequest::CreateReplicated { seg } => {
                self.store.create(seg);
                self.log.append(seg);
                DsmReply::Ok
            }
            DsmRequest::MirrorCreate { seg } => {
                self.store.create(seg);
                self.log.append(seg);
                DsmReply::Ok
            }
            DsmRequest::MirrorPage { seg, page } => self.apply_mirror(seg, page),
            DsmRequest::Promote { seg, epoch } => {
                // lint:allow(wall-clock) — stale: nothing here has ever
                // read a wall clock.
                self.log.append(seg + epoch);
                DsmReply::Ok
            }
        }
    }

    /// Correct end-to-end: fence, mutate, log, ack — reached only
    /// through the `MirrorPage` arm, so the rules must propagate.
    fn apply_mirror(&self, seg: u64, page: u32) -> DsmReply {
        if !self.check_serving(seg) {
            return DsmReply::Err("not serving".to_string());
        }
        self.store.write_page(seg, page);
        self.log.append(seg);
        DsmReply::Ok
    }

    fn check_serving(&self, seg: u64) -> bool {
        seg != 0
    }

    /// Stripe guard live across a blocking RaTP call.
    fn flush_dirty(&self) {
        let dirty = self.dirty.lock();
        for page in dirty.iter() {
            self.ratp.call(*page);
        }
    }
}

pub struct Store;
impl Store {
    pub fn read_version(&self, _seg: u64, _page: u32) -> u64 {
        0
    }
    pub fn write_page(&self, _seg: u64, _page: u32) {}
    pub fn create(&self, _seg: u64) {}
}

pub struct Log;
impl Log {
    pub fn append(&self, _rec: u64) {}
}

pub struct Ratp;
impl Ratp {
    pub fn call(&self, _page: u32) {}
}
