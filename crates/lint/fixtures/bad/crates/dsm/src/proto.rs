//! Fixture: the DSM wire protocol with the PR-6/PR-8 replication
//! variants. The handler in `server.rs` omits `AdoptReplicaConfig` —
//! the dispatch-arm rule must name it.

pub enum DsmRequest {
    FetchPage { seg: u64, page: u32 },
    WriteBack { seg: u64, page: u32 },
    CreateReplicated { seg: u64 },
    MirrorCreate { seg: u64 },
    MirrorPage { seg: u64, page: u32 },
    Promote { seg: u64, epoch: u64 },
    AdoptReplicaConfig { seg: u64, epoch: u64 },
}

pub enum DsmReply {
    Ok,
    Grant { version: u64 },
    Err(String),
}
