//! Fixture: a "simulation" crate full of determinism violations.

use std::sync::Mutex;

pub fn wall_clock_everywhere() -> u64 {
    let started = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    started.elapsed().as_nanos() as u64
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn std_lock(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}
