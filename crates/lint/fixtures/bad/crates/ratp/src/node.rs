//! Fixture: the dispatch loop misses `PacketKind::Unhandled`.

use crate::packet::PacketKind;

pub fn dispatch(kind: PacketKind) -> &'static str {
    match kind {
        PacketKind::Request => "request",
        PacketKind::Reply => "reply",
        _ => "dropped on the floor",
    }
}
