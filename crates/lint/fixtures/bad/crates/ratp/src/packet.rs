//! Fixture: a wire enum with a variant nobody dispatches.

pub enum PacketKind {
    Request = 1,
    Reply = 2,
    Unhandled = 3,
}
