//! Unit tests for the phase-1 summary builder and phase-2 propagation.
//!
//! Beyond the happy paths, these pin the analysis' *known soundness
//! holes* — recursion, method-vs-free-fn name collisions, closures
//! handed to scoped threads — so they stay documented behavior rather
//! than latent surprises when a rule misses (or over-reports) something.

use clouds_lint::summary::Summaries;
use clouds_lint::{lexer, strip_test_items, Config, FileInfo, SourceFile};

fn src_file(rel: &str, src: &str) -> SourceFile {
    let lexed = lexer::lex(src);
    let runtime_tokens = strip_test_items(&lexed.tokens);
    SourceFile {
        info: FileInfo {
            rel: rel.to_string(),
            crate_name: Some("fix".to_string()),
            is_src: true,
        },
        lexed,
        runtime_tokens,
    }
}

fn build(src: &str) -> Summaries {
    let files = vec![src_file("crates/fix/src/lib.rs", src)];
    Summaries::build(&files, &Config::clouds())
}

fn idx(sums: &Summaries, name: &str) -> usize {
    sums.fns
        .iter()
        .position(|f| f.name == name)
        .unwrap_or_else(|| panic!("no fn {name}"))
}

#[test]
fn direct_recursion_terminates_and_misses_nothing() {
    let sums = build(
        "fn looper(n: u32) { if n > 0 { looper(n - 1); } }
         fn target(log: &Log) { log.append(1); }",
    );
    // Cycle safety: reachability over a self-loop must terminate.
    assert!(sums
        .reaches(idx(&sums, "looper"), 8, |f| !f.log_appends.is_empty())
        .is_none());
    // And the self-loop is still a real edge: a predicate matching the
    // function itself is found at depth zero.
    assert!(sums
        .reaches(idx(&sums, "looper"), 8, |f| f.name == "looper")
        .is_some());
}

#[test]
fn mutual_recursion_is_cycle_safe() {
    let sums = build(
        "fn ping(n: u32) { pong(n); }
         fn pong(n: u32) { ping(n); }",
    );
    assert!(sums
        .reaches(idx(&sums, "ping"), 16, |f| f.name == "absent")
        .is_none());
}

#[test]
fn depth_bound_truncates_long_chains() {
    let sums = build(
        "fn a() { b(); }
         fn b() { c(); }
         fn c() { d(); }
         fn d(log: &Log) { log.append(1); }",
    );
    let logs = |f: &clouds_lint::summary::FnSummary| !f.log_appends.is_empty();
    // d is 3 hops from a: found at depth 3, silently truncated at 2 —
    // the documented cost of the bound.
    assert!(sums.reaches(idx(&sums, "a"), 3, logs).is_some());
    assert!(sums.reaches(idx(&sums, "a"), 2, logs).is_none());
    // The witness names the whole chain.
    let chain = sums.reaches(idx(&sums, "a"), 4, logs).unwrap();
    assert_eq!(chain, vec!["a", "b", "c", "d"]);
}

#[test]
fn self_method_calls_prefer_the_impl_types_own_method() {
    let sums = build(
        "struct Server { log: Log }
         impl Server {
             fn commit(&self) { self.persist(); }
             fn persist(&self) { self.log.append(1); }
         }
         fn persist() { blocking_call(); }
         fn blocking_call(tx: &Tx) { tx.call(1); }",
    );
    // `self.persist()` resolves to Server::persist only — the free
    // `persist` (which blocks) is not a candidate.
    let commit = &sums.fns[idx(&sums, "commit")];
    let site = commit
        .calls
        .iter()
        .find(|c| c.callee == "persist")
        .expect("call site");
    assert!(site.recv_self);
    let cands = sums.candidates(site, commit);
    assert_eq!(cands.len(), 1);
    assert_eq!(sums.fns[cands[0]].impl_type.as_deref(), Some("Server"));
    assert!(sums
        .reaches(cands[0], 4, |f| f.blocks_directly())
        .is_none());
}

#[test]
fn free_fn_calls_merge_all_same_named_definitions() {
    // The documented hole: without a receiver, name matching cannot
    // tell `flush` the free function from `Flusher::flush` the method,
    // so a caller of either conservatively reaches both.
    let sums = build(
        "fn flush() {}
         struct Flusher { tx: Tx }
         impl Flusher {
             fn flush(&self) { self.tx.call(1); }
         }
         fn caller() { flush(); }",
    );
    let caller = &sums.fns[idx(&sums, "caller")];
    let site = caller.calls.iter().find(|c| c.callee == "flush").unwrap();
    assert!(!site.recv_self);
    assert_eq!(sums.candidates(site, caller).len(), 2);
    // …and therefore `caller` "may block", even though the free
    // `flush` it really calls does not.
    assert!(sums
        .reaches(idx(&sums, "caller"), 4, |f| f.blocks_directly())
        .is_some());
}

#[test]
fn closure_bodies_are_attributed_to_the_enclosing_fn() {
    // Calls inside a closure — including one handed to a scoped
    // thread — are summarized as calls of the enclosing function, with
    // the guards lexically live at that point. Right for guard
    // lifetimes (the spawn does not release the caller's guard), but
    // it also means the *closure's* calls inherit the caller's guard
    // set even though the spawned thread never holds it: conservative
    // over-approximation, pinned here.
    let sums = build(
        "struct W { m: Mutex, ratp: Tx }
         impl W {
             fn fan_out(&self, scope: &Scope) {
                 let g = self.m.lock();
                 scope.spawn(move || {
                     self.ratp.call(1);
                 });
                 g.touch();
             }
         }",
    );
    let fan_out = &sums.fns[idx(&sums, "fan_out")];
    let call = fan_out
        .calls
        .iter()
        .find(|c| c.callee == "call")
        .expect("closure call attributed to fan_out");
    assert!(call.blocking_direct);
    assert_eq!(call.held, vec!["W.m".to_string()]);
}

#[test]
fn wrapped_lock_in_call_args_is_a_statement_temporary() {
    // `take(&mut *m.lock())` binds take's result, not the guard: the
    // guard dies at the `;` and the following call is guard-free.
    let sums = build(
        "struct N { m: Mutex, tx: Tx }
         impl N {
             fn drain(&self) {
                 let drained = take(&mut *self.m.lock());
                 self.tx.call(drained);
             }
         }",
    );
    let drain = &sums.fns[idx(&sums, "drain")];
    let call = drain.calls.iter().find(|c| c.callee == "call").unwrap();
    assert!(call.blocking_direct);
    assert!(call.held.is_empty(), "held: {:?}", call.held);
}

#[test]
fn protocol_sites_cover_field_and_getter_receivers() {
    let sums = build(
        "struct P { log: Log }
         impl P {
             fn direct(&self) { self.log.append(1); }
             fn through_getter(&self, d: &Dsm) { d.log().append(1); }
             fn fenced(&self, seg: u64) { check_serving(seg); }
             fn touches(&self, store: &Store) { store.read_version(1); }
         }",
    );
    assert_eq!(sums.fns[idx(&sums, "direct")].log_appends.len(), 1);
    assert_eq!(sums.fns[idx(&sums, "through_getter")].log_appends.len(), 1);
    assert_eq!(sums.fns[idx(&sums, "fenced")].fence_checks.len(), 1);
    assert_eq!(sums.fns[idx(&sums, "touches")].store_touches.len(), 1);
}

#[test]
fn stoplisted_calls_are_recorded_but_never_followed() {
    let sums = build(
        "struct M { m: Mutex }
         impl M {
             fn busy(&self, map: &Map) { let g = self.m.lock(); map.insert(1); }
         }
         fn insert(tx: &Tx) { tx.call(1); }",
    );
    let busy = &sums.fns[idx(&sums, "busy")];
    let site = busy.calls.iter().find(|c| c.callee == "insert").unwrap();
    assert!(site.stoplisted, "collection vocabulary must be stoplisted");
    // The workspace fn `insert` blocks, but a stoplisted site must not
    // reach it.
    assert!(sums
        .calls_reach(busy, busy.body, 4, |f| f.blocks_directly())
        .is_none());
}
