//! End-to-end runs over the seeded fixture trees, plus a self-check on
//! the real workspace.

use clouds_lint::{render_json, run, Config};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

fn rules_of(findings: &[clouds_lint::Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn bad_fixture_trips_every_rule() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let rules = rules_of(&findings);
    for expected in [
        "wall-clock",
        "os-entropy",
        "std-sync-lock",
        "hash-iter",
        "lock-order",
        "dispatch-arm",
        "obs-schema",
    ] {
        assert!(
            rules.contains(&expected),
            "rule {expected} not triggered; findings: {findings:#?}"
        );
    }
}

#[test]
fn bad_fixture_lock_cycle_names_both_locks() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let cycle = findings
        .iter()
        .find(|f| f.rule == "lock-order" && f.message.contains("cycle"))
        .expect("lock-order cycle finding");
    assert!(
        cycle.message.contains("Table.accounts") && cycle.message.contains("Table.audit"),
        "cycle should name both locks with their impl type: {}",
        cycle.message
    );
}

#[test]
fn bad_fixture_lock_cycle_through_stripe_family_keys_the_indexed_path() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let cycle = findings
        .iter()
        .find(|f| f.rule == "lock-order" && f.message.contains("stripes[_]"))
        .expect("stripe-family lock-order cycle finding");
    assert!(
        cycle.message.contains("Grid.stripes[_].pages")
            && cycle.message.contains("Grid.stripes[_].meta"),
        "cycle should key stripes by their full path with the index abstracted: {}",
        cycle.message
    );
}

#[test]
fn bad_fixture_dispatch_names_missing_variant() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let arm = findings
        .iter()
        .find(|f| f.rule == "dispatch-arm")
        .expect("dispatch-arm finding");
    assert!(
        arm.message.contains("PacketKind::Unhandled"),
        "should name the unhandled variant: {}",
        arm.message
    );
    // The handled variants must NOT be reported.
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == "dispatch-arm" && f.message.contains("PacketKind::Request")),
        "handled variant falsely reported"
    );
}

#[test]
fn bad_fixture_obs_schema_both_directions() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "obs-schema" && f.message.contains("bogus.metric")),
        "unregistered metric not reported"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "obs-schema" && f.message.contains("stale.metric")),
        "stale manifest entry not reported"
    );
}

#[test]
fn clean_fixture_has_no_findings() {
    let findings = run(&fixture("clean"), &Config::clouds()).expect("fixture run");
    assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = run(root, &Config::clouds()).expect("workspace run");
    assert!(findings.is_empty(), "workspace not lint-clean: {findings:#?}");
}

#[test]
fn json_output_is_stable_and_sorted() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let json = render_json(&findings);
    assert!(json.starts_with("{\"version\":1,\"findings\":["));
    assert!(json.ends_with("]}\n"));
    // Deterministic: a second run renders byte-identically.
    let again = render_json(&run(&fixture("bad"), &Config::clouds()).expect("rerun"));
    assert_eq!(json, again);
    // Sorted by (file, line, rule).
    let mut keys: Vec<(&str, u32, &str)> = findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    let sorted = {
        let mut s = keys.clone();
        s.sort();
        s
    };
    assert_eq!(keys, sorted);
    keys.clear();
}
