//! End-to-end runs over the seeded fixture trees, plus a self-check on
//! the real workspace.

use clouds_lint::{render_json, run, Config};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name)
}

fn rules_of(findings: &[clouds_lint::Finding]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn bad_fixture_trips_every_rule() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let rules = rules_of(&findings);
    for expected in [
        "wall-clock",
        "os-entropy",
        "std-sync-lock",
        "hash-iter",
        "lock-order",
        "dispatch-arm",
        "obs-schema",
        "wal-before-ack",
        "fence-before-apply",
        "lock-across-call",
        "stale-allow",
    ] {
        assert!(
            rules.contains(&expected),
            "rule {expected} not triggered; findings: {findings:#?}"
        );
    }
}

#[test]
fn bad_fixture_wal_names_the_unlogged_acking_arm() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let wal: Vec<_> = findings.iter().filter(|f| f.rule == "wal-before-ack").collect();
    assert_eq!(wal.len(), 1, "exactly the seeded arm: {wal:#?}");
    assert!(
        wal[0].message.contains("DsmRequest::WriteBack"),
        "should name the arm: {}",
        wal[0].message
    );
    // The arm whose logging happens inside a callee must NOT be
    // flagged — phase-2 propagation clears it.
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == "wal-before-ack" && f.message.contains("MirrorPage")),
        "propagation failed to clear the delegating arm"
    );
}

#[test]
fn bad_fixture_fence_names_the_unfenced_arm() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let fence: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "fence-before-apply")
        .collect();
    assert_eq!(fence.len(), 1, "exactly the seeded arm: {fence:#?}");
    assert!(
        fence[0].message.contains("DsmRequest::FetchPage"),
        "should name the arm: {}",
        fence[0].message
    );
    // The fenced WriteBack arm (fence precedes the touch) stays clean.
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == "fence-before-apply" && f.message.contains("WriteBack")),
        "fenced arm falsely reported"
    );
}

#[test]
fn bad_fixture_lock_across_call_names_guard_and_callee() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let f = findings
        .iter()
        .find(|f| f.rule == "lock-across-call")
        .expect("lock-across-call finding");
    assert!(
        f.message.contains("DsmServer.dirty") && f.message.contains(".call("),
        "should name the held guard and the blocking callee: {}",
        f.message
    );
}

#[test]
fn bad_fixture_stale_allow_anchors_the_dead_directive() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let f = findings
        .iter()
        .find(|f| f.rule == "stale-allow")
        .expect("stale-allow finding");
    assert!(
        f.file.ends_with("crates/dsm/src/server.rs") && f.message.contains("wall-clock"),
        "should anchor the dead wall-clock directive: {}:{} {}",
        f.file,
        f.line,
        f.message
    );
}

#[test]
fn bad_fixture_dispatch_names_omitted_wire_variant() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "dispatch-arm"
                && f.message.contains("DsmRequest::AdoptReplicaConfig")),
        "omitted PR-6/PR-8 wire variant not reported"
    );
    // The handled replication variants must NOT be reported.
    for handled in ["CreateReplicated", "MirrorCreate", "MirrorPage", "Promote"] {
        assert!(
            !findings.iter().any(|f| f.rule == "dispatch-arm"
                && f.message.contains(&format!("DsmRequest::{handled}"))),
            "handled variant {handled} falsely reported"
        );
    }
}

#[test]
fn sarif_output_lists_rules_and_results() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let sarif = clouds_lint::render_sarif(&findings);
    assert!(sarif.contains("\"version\":\"2.1.0\""));
    assert!(sarif.contains("\"name\":\"clouds-lint\""));
    // Every engine rule is declared; every finding becomes a result.
    for (id, _) in clouds_lint::RULES {
        assert!(
            sarif.contains(&format!("{{\"id\":\"{id}\"")),
            "rule {id} missing from SARIF rules array"
        );
    }
    assert_eq!(
        sarif.matches("\"ruleId\"").count(),
        findings.len(),
        "one SARIF result per finding"
    );
    // Empty runs still produce a valid document (CI uploads it blind).
    let empty = clouds_lint::render_sarif(&[]);
    assert!(empty.contains("\"results\":[]"));
}

#[test]
fn bad_fixture_lock_cycle_names_both_locks() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let cycle = findings
        .iter()
        .find(|f| f.rule == "lock-order" && f.message.contains("cycle"))
        .expect("lock-order cycle finding");
    assert!(
        cycle.message.contains("Table.accounts") && cycle.message.contains("Table.audit"),
        "cycle should name both locks with their impl type: {}",
        cycle.message
    );
}

#[test]
fn bad_fixture_lock_cycle_through_stripe_family_keys_the_indexed_path() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let cycle = findings
        .iter()
        .find(|f| f.rule == "lock-order" && f.message.contains("stripes[_]"))
        .expect("stripe-family lock-order cycle finding");
    assert!(
        cycle.message.contains("Grid.stripes[_].pages")
            && cycle.message.contains("Grid.stripes[_].meta"),
        "cycle should key stripes by their full path with the index abstracted: {}",
        cycle.message
    );
}

#[test]
fn bad_fixture_dispatch_names_missing_variant() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "dispatch-arm" && f.message.contains("PacketKind::Unhandled")),
        "should name the unhandled variant"
    );
    // The handled variants must NOT be reported.
    assert!(
        !findings
            .iter()
            .any(|f| f.rule == "dispatch-arm" && f.message.contains("PacketKind::Request")),
        "handled variant falsely reported"
    );
}

#[test]
fn bad_fixture_obs_schema_both_directions() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "obs-schema" && f.message.contains("bogus.metric")),
        "unregistered metric not reported"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "obs-schema" && f.message.contains("stale.metric")),
        "stale manifest entry not reported"
    );
}

#[test]
fn clean_fixture_has_no_findings() {
    let findings = run(&fixture("clean"), &Config::clouds()).expect("fixture run");
    assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = run(root, &Config::clouds()).expect("workspace run");
    assert!(findings.is_empty(), "workspace not lint-clean: {findings:#?}");
}

#[test]
fn json_output_is_stable_and_sorted() {
    let findings = run(&fixture("bad"), &Config::clouds()).expect("fixture run");
    let json = render_json(&findings);
    assert!(json.starts_with("{\"version\":1,\"findings\":["));
    assert!(json.ends_with("]}\n"));
    // Deterministic: a second run renders byte-identically.
    let again = render_json(&run(&fixture("bad"), &Config::clouds()).expect("rerun"));
    assert_eq!(json, again);
    // Sorted by (file, line, rule).
    let mut keys: Vec<(&str, u32, &str)> = findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    let sorted = {
        let mut s = keys.clone();
        s.sort();
        s
    };
    assert_eq!(keys, sorted);
    keys.clear();
}
